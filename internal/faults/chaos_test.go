package faults

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"testing"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/tree"
)

// chaosWorld builds a small warehouse world plus a clean fitted pipeline
// and its healthy predictions for the scoring window.
func chaosWorld(t *testing.T) (*store.Warehouse, *core.WarehouseSource, *core.Pipeline, features.Window, *core.Predictions) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Customers = 250
	cfg.Months = 3
	cfg.Seed = 9
	wh, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.GenerateToWarehouse(cfg, wh); err != nil {
		t.Fatal(err)
	}
	src := core.NewWarehouseSource(wh, cfg.DaysPerMonth)
	p, err := core.Fit(src, []core.WindowSpec{core.MonthSpec(1, cfg.DaysPerMonth)}, core.Config{
		Groups: []features.Group{features.F1Baseline, features.F3PS, features.F4CallGraph},
		Forest: tree.ForestConfig{NumTrees: 15, MinLeafSamples: 10, Seed: 2},
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	clean, err := p.Predict(src, win)
	if err != nil {
		t.Fatal(err)
	}
	return wh, src, p, win, clean
}

func noSleep(time.Duration) {}

// runSchedule scores the window under one seeded fault schedule, with the
// production resilience stack (fault source -> retry source -> degraded
// predict).
func runSchedule(src *core.WarehouseSource, p *core.Pipeline, win features.Window, seed int64) (*core.Predictions, Counts, error) {
	inj := New(Config{
		Seed:      seed,
		Transient: 0.30,
		Missing:   0.08,
		Corrupt:   0.05,
		Latency:   time.Millisecond,
		Sleep:     noSleep,
	})
	rs := core.NewRetrySource(Wrap(src, inj), core.RetryConfig{Seed: seed, Sleep: noSleep})
	preds, err := p.PredictDegraded(rs, win)
	return preds, inj.Counts(), err
}

// TestChaosScoringTypedOrDegraded is the central chaos property: under any
// seeded fault schedule, degraded scoring either fails with the one typed
// fatal error (the customer universe is gone) or returns a full, valid
// scoring of the window — and a run whose degradation mask is empty is
// bit-identical to the clean run.
func TestChaosScoringTypedOrDegraded(t *testing.T) {
	_, src, p, win, clean := chaosWorld(t)

	degradedRuns, fatalRuns, cleanRuns := 0, 0, 0
	for seed := int64(1); seed <= 15; seed++ {
		preds, counts, err := runSchedule(src, p, win, seed)
		if err != nil {
			if !errors.Is(err, features.ErrUniverseUnavailable) {
				t.Fatalf("seed %d: untyped chaos failure: %v", seed, err)
			}
			fatalRuns++
			continue
		}
		if len(preds.IDs) != len(clean.IDs) {
			t.Fatalf("seed %d: scored %d customers, want %d", seed, len(preds.IDs), len(clean.IDs))
		}
		for i, s := range preds.Scores {
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("seed %d: score[%d] = %v out of range", seed, i, s)
			}
			if preds.IDs[i] != clean.IDs[i] {
				t.Fatalf("seed %d: row %d id %d, want %d", seed, i, preds.IDs[i], clean.IDs[i])
			}
		}
		if preds.Degraded.Empty() {
			for i := range preds.Scores {
				if math.Float64bits(preds.Scores[i]) != math.Float64bits(clean.Scores[i]) {
					t.Fatalf("seed %d: empty mask but score[%d] differs from clean run", seed, i)
				}
			}
			cleanRuns++
		} else {
			degradedRuns++
		}
		if counts.Transients == 0 && counts.Missing == 0 && counts.Corrupt == 0 && !preds.Degraded.Empty() {
			t.Fatalf("seed %d: mask %s with no injected faults", seed, preds.Degraded)
		}
	}
	t.Logf("15 schedules: %d degraded, %d clean, %d fatal", degradedRuns, fatalRuns, cleanRuns)
	if degradedRuns == 0 {
		t.Error("fault rates produced no degraded runs — chaos property untested")
	}
}

// TestChaosScheduleReproducible: the same seed replays the exact same
// failure timeline — identical mask, scores and fault counts.
func TestChaosScheduleReproducible(t *testing.T) {
	_, src, p, win, _ := chaosWorld(t)
	for seed := int64(1); seed <= 5; seed++ {
		a, ca, errA := runSchedule(src, p, win, seed)
		b, cb, errB := runSchedule(src, p, win, seed)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: outcomes diverge: %v vs %v", seed, errA, errB)
		}
		if ca != cb {
			t.Fatalf("seed %d: fault counts diverge: %+v vs %+v", seed, ca, cb)
		}
		if errA != nil {
			continue
		}
		if a.Degraded != b.Degraded {
			t.Fatalf("seed %d: masks diverge: %s vs %s", seed, a.Degraded, b.Degraded)
		}
		for i := range a.Scores {
			if math.Float64bits(a.Scores[i]) != math.Float64bits(b.Scores[i]) {
				t.Fatalf("seed %d: replayed score[%d] differs", seed, i)
			}
		}
	}
}

// TestChaosZeroRateBitIdentical: a zero-rate injector plus the full retry
// stack changes nothing — scores are bit-identical to the plain pipeline
// and no fault counter moves.
func TestChaosZeroRateBitIdentical(t *testing.T) {
	_, src, p, win, clean := chaosWorld(t)
	inj := New(Config{Seed: 123})
	rs := core.NewRetrySource(Wrap(src, inj), core.RetryConfig{Seed: 123, Sleep: noSleep})
	preds, err := p.PredictDegraded(rs, win)
	if err != nil {
		t.Fatal(err)
	}
	if !preds.Degraded.Empty() {
		t.Errorf("zero-rate mask = %s, want none", preds.Degraded)
	}
	for i := range preds.Scores {
		if preds.IDs[i] != clean.IDs[i] || math.Float64bits(preds.Scores[i]) != math.Float64bits(clean.Scores[i]) {
			t.Fatalf("zero-rate run differs from clean run at row %d", i)
		}
	}
	if c := inj.Counts(); c != (Counts{}) {
		t.Errorf("zero-rate injector fired faults: %+v", c)
	}
	if rs.Retries() != 0 {
		t.Errorf("zero-rate run performed %d retries", rs.Retries())
	}
}

// TestChaosCrashStormNeverTearsWarehouse hammers partition writes and day
// staging through crash-injecting hooks across many seeds, retrying each
// crashed write like the ETL driver would, and asserts the warehouse is
// never left with a torn (listed but unreadable) partition.
func TestChaosCrashStormNeverTearsWarehouse(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 60
	cfg.Months = 2
	cfg.Seed = 4
	months := synth.Simulate(cfg)

	for seed := int64(1); seed <= 8; seed++ {
		wh, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		inj := New(Config{Seed: seed, CrashWrites: 0.4})
		wh.SetHook(inj.WarehouseHook())

		write := func(desc string, f func() error) {
			for attempt := 0; ; attempt++ {
				err := f()
				if err == nil {
					return
				}
				var cr *store.Crash
				if !errors.As(err, &cr) {
					t.Fatalf("seed %d: %s: non-crash failure: %v", seed, desc, err)
				}
				if attempt > 20 {
					t.Fatalf("seed %d: %s: still crashing after %d attempts", seed, desc, attempt)
				}
			}
		}
		for _, md := range months {
			for name, tb := range md.Tables() {
				name, tb := name, tb
				m := md.Month
				write(fmt.Sprintf("write %s m%d", name, m), func() error { return wh.WritePartition(name, m, tb) })
			}
		}
		// Stage a few extra days of calls into a fresh month and compact.
		stagedMonth := cfg.Months + 1
		for day := 1; day <= 3; day++ {
			d := day
			write(fmt.Sprintf("stage day %d", d), func() error {
				return wh.StageDay(synth.TableCalls, stagedMonth, d, months[0].Calls)
			})
		}
		wh.SetHook(nil)
		if err := wh.CompactMonth(synth.TableCalls, stagedMonth); err != nil {
			t.Fatalf("seed %d: compact after storm: %v", seed, err)
		}

		// Everything listed must read back whole.
		for name := range months[0].Tables() {
			ms, err := wh.Months(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(ms) == 0 {
				t.Fatalf("seed %d: %s has no partitions after storm", seed, name)
			}
			for _, m := range ms {
				if _, err := wh.ReadPartition(name, m); err != nil {
					t.Errorf("seed %d: torn partition %s month=%d: %v", seed, name, m, err)
				}
			}
		}
		crashes := inj.Counts().Crashes
		if crashes == 0 {
			t.Errorf("seed %d: storm injected no crashes", seed)
		}
	}
}

// TestInjectorDeterministicDecisions: two injectors with the same seed make
// identical decisions for an identical call sequence; a different seed
// diverges somewhere.
func TestInjectorDeterministicDecisions(t *testing.T) {
	trace := func(seed int64) []string {
		inj := New(Config{Seed: seed, Transient: 0.4, Missing: 0.1, Corrupt: 0.1, Sleep: noSleep})
		var out []string
		for i := 0; i < 40; i++ {
			err := inj.readFault(fmt.Sprintf("read:t%d", i%5), []int{i % 3})
			out = append(out, fmt.Sprint(err))
		}
		return out
	}
	a, b, c := trace(42), trace(42), trace(43)
	diff43 := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %q vs %q", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diff43 = true
		}
	}
	if !diff43 {
		t.Error("seeds 42 and 43 produced identical 40-call schedules")
	}
}

// TestChaosShardedCrashStormNeverTearsWarehouse is the sharded-layout twin
// of the crash-storm property: a crash anywhere inside a multi-file shard
// set must never tear the month. Readers see the complete old layout or the
// complete new one — an interrupted set reads as absent, never as a partial
// or corrupt month — and retrying the write to completion always recovers.
func TestChaosShardedCrashStormNeverTearsWarehouse(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 60
	cfg.Months = 2
	cfg.Seed = 4
	months := synth.Simulate(cfg)

	for seed := int64(1); seed <= 8; seed++ {
		wh, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		sw, err := wh.Sharded(4)
		if err != nil {
			t.Fatal(err)
		}
		inj := New(Config{Seed: seed, CrashWrites: 0.3})
		wh.SetHook(inj.WarehouseHook())

		write := func(desc string, f func() error) {
			for attempt := 0; ; attempt++ {
				err := f()
				if err == nil {
					return
				}
				var cr *store.Crash
				if !errors.As(err, &cr) {
					t.Fatalf("seed %d: %s: non-crash failure: %v", seed, desc, err)
				}
				if attempt > 40 {
					t.Fatalf("seed %d: %s: still crashing after %d attempts", seed, desc, attempt)
				}
				// Mid-storm invariant: a crash inside the shard set must
				// leave the month whole-old or absent, never torn.
				if _, rerr := wh.ReadPartition(synth.TableCalls, 1); rerr != nil &&
					!errors.Is(rerr, fs.ErrNotExist) {
					t.Fatalf("seed %d: %s: crash window exposed a torn month: %v", seed, desc, rerr)
				}
			}
		}
		for _, md := range months {
			for name, tb := range md.Tables() {
				name, tb := name, tb
				m := md.Month
				write(fmt.Sprintf("sharded write %s m%d", name, m), func() error {
					return sw.WritePartition(name, m, tb)
				})
			}
		}
		wh.SetHook(nil)

		// Every month reads back whole, with exactly the simulated rows.
		for name, tb := range months[0].Tables() {
			got, err := wh.ReadPartition(name, 1)
			if err != nil {
				t.Fatalf("seed %d: torn sharded partition %s: %v", seed, name, err)
			}
			if got.NumRows() != tb.NumRows() {
				t.Fatalf("seed %d: %s month 1 has %d rows, want %d", seed, name, got.NumRows(), tb.NumRows())
			}
			shards, err := wh.DetectShards(name)
			if err != nil || shards != 4 {
				t.Fatalf("seed %d: %s landed with %d shards (err=%v), want 4", seed, name, shards, err)
			}
		}
		if inj.Counts().Crashes == 0 {
			t.Errorf("seed %d: storm injected no crashes", seed)
		}
	}
}

// TestShardedCrashWindowCompleteOldOrNew pins the exact crash-window
// semantics with a deterministic hook: crashing on the nth shard file of an
// overwrite leaves the complete previous month visible (the plain file
// wins until the set commits), and on a fresh month leaves it cleanly
// absent — fs.ErrNotExist, never store.ErrCorrupt.
func TestShardedCrashWindowCompleteOldOrNew(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 40
	cfg.Months = 1
	cfg.Seed = 6
	months := synth.Simulate(cfg)
	calls := months[0].Calls

	for crashAt := 1; crashAt <= 4; crashAt++ {
		wh, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		sw, err := wh.Sharded(4)
		if err != nil {
			t.Fatal(err)
		}

		armCrash := func(n int) {
			count := 0
			wh.SetHook(func(op store.Op, name string, month int) error {
				if op != store.OpWritePartition {
					return nil
				}
				count++
				if count == n {
					return &store.Crash{Point: store.CrashMidWrite}
				}
				return nil
			})
		}

		// Fresh month, crash mid-set: the month must read as absent.
		armCrash(crashAt)
		err = sw.WritePartition(synth.TableCalls, 1, calls)
		var cr *store.Crash
		if !errors.As(err, &cr) {
			t.Fatalf("crashAt=%d: fresh write returned %v, want crash", crashAt, err)
		}
		if _, rerr := wh.ReadPartition(synth.TableCalls, 1); !errors.Is(rerr, fs.ErrNotExist) {
			t.Fatalf("crashAt=%d: interrupted fresh set reads as %v, want fs.ErrNotExist", crashAt, rerr)
		}
		if wh.HasPartition(synth.TableCalls, 1) {
			t.Fatalf("crashAt=%d: HasPartition true over interrupted fresh set", crashAt)
		}

		// Retry to completion: the month recovers whole.
		wh.SetHook(nil)
		if err := sw.WritePartition(synth.TableCalls, 1, calls); err != nil {
			t.Fatalf("crashAt=%d: recovery write: %v", crashAt, err)
		}
		whole, err := wh.ReadPartition(synth.TableCalls, 1)
		if err != nil || whole.NumRows() != calls.NumRows() {
			t.Fatalf("crashAt=%d: recovered month rows=%v err=%v, want %d rows", crashAt, whole.NumRows(), err, calls.NumRows())
		}

		// Overwrite with a plain month in place: a crash mid-set must leave
		// the complete old month visible (plain file wins until commit).
		if err := wh.WritePartition(synth.TableCalls, 2, calls); err != nil {
			t.Fatal(err)
		}
		armCrash(crashAt)
		err = sw.WritePartition(synth.TableCalls, 2, calls)
		if !errors.As(err, &cr) {
			t.Fatalf("crashAt=%d: overwrite returned %v, want crash", crashAt, err)
		}
		wh.SetHook(nil)
		old, err := wh.ReadPartition(synth.TableCalls, 2)
		if err != nil {
			t.Fatalf("crashAt=%d: crash window lost the old month: %v", crashAt, err)
		}
		if old.NumRows() != calls.NumRows() {
			t.Fatalf("crashAt=%d: old month has %d rows after crash, want %d", crashAt, old.NumRows(), calls.NumRows())
		}
	}
}

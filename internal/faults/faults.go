// Package faults is a deterministic, seeded fault injector for the storage
// and source layers. Every decision — does this read fail transiently, is
// this partition missing, is this file corrupt, how much latency lands on
// this attempt, does this write crash — is a pure function of (seed, site,
// attempt), so a failure schedule observed once reproduces exactly from its
// seed: chaos tests are property tests, not flake generators.
//
// The injector interposes at the same seams production resilience hooks
// into: it wraps a features.TableReader (per-table reads), a core.Source
// (windows and truth), and plugs into store.Warehouse via SetHook (I/O
// errors and simulated crash points around partition writes). Layering
// core.RetrySource above a faulty source exercises the full
// retry-then-degrade path.
package faults

import (
	"fmt"
	"hash/fnv"
	"io/fs"
	"sync"
	"time"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/store"
	"telcochurn/internal/table"
)

// Config sets per-fault-class rates in [0, 1]. The zero value injects
// nothing.
type Config struct {
	// Seed keys every decision. Two injectors with the same seed and config
	// produce identical fault schedules for identical call sequences.
	Seed int64
	// Transient is the per-attempt probability that a read fails with a
	// retryable error. Keyed by attempt, so a retry of the same site can
	// succeed — this is the class RetrySource absorbs.
	Transient float64
	// Missing is the per-(table, month) probability that a partition is
	// persistently absent (fs.ErrNotExist on every attempt). Retries cannot
	// heal it; degraded assembly imputes around it.
	Missing float64
	// Corrupt is the per-(table, month) probability that a partition is
	// persistently unreadable (store.ErrCorrupt on every attempt).
	Corrupt float64
	// CrashWrites is the per-write probability that a warehouse write (via
	// WarehouseHook) simulates a crash; the crash point cycles
	// deterministically through mid-write, before-rename and after-rename.
	CrashWrites float64
	// Latency is the maximum injected latency per read attempt; each
	// attempt sleeps a deterministic fraction of it. Zero disables.
	Latency time.Duration
	// Sleep is the latency clock (default time.Sleep; tests inject a fake).
	Sleep func(time.Duration)
}

// Counts reports how many faults of each class the injector has fired.
type Counts struct {
	Transients uint64
	Missing    uint64
	Corrupt    uint64
	Crashes    uint64
	Latencies  uint64
}

// Injector makes seeded fault decisions and counts what it fired.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[string]int
	counts   Counts
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Injector{cfg: cfg, attempts: make(map[string]int)}
}

// Counts returns a snapshot of the fired-fault counters.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// roll returns a deterministic uniform value in [0, 1) for the decision
// keyed by (seed, kind, site, attempt).
func (in *Injector) roll(kind, site string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", in.cfg.Seed, kind, site, attempt)
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// nextAttempt increments and returns the per-site attempt counter (under mu).
func (in *Injector) nextAttempt(site string) int {
	in.attempts[site]++
	return in.attempts[site]
}

// readFault decides the fate of one read attempt over the given months.
// Persistent faults (missing, corrupt) are keyed per (site, month) with no
// attempt component: every retry sees the same outcome. Transient faults
// and latency are keyed per attempt.
func (in *Injector) readFault(site string, months []int) error {
	in.mu.Lock()
	attempt := in.nextAttempt(site)
	for _, m := range months {
		ms := fmt.Sprintf("%s:month=%d", site, m)
		if in.roll("missing", ms, 0) < in.cfg.Missing {
			in.counts.Missing++
			in.mu.Unlock()
			return fmt.Errorf("faults: %s: %w", ms, fs.ErrNotExist)
		}
		if in.roll("corrupt", ms, 0) < in.cfg.Corrupt {
			in.counts.Corrupt++
			in.mu.Unlock()
			return fmt.Errorf("faults: %s: %w", ms, store.ErrCorrupt)
		}
	}
	if in.roll("transient", site, attempt) < in.cfg.Transient {
		in.counts.Transients++
		in.mu.Unlock()
		return fmt.Errorf("faults: transient I/O error at %s (attempt %d)", site, attempt)
	}
	var sleep time.Duration
	if in.cfg.Latency > 0 {
		sleep = time.Duration(in.roll("latency", site, attempt) * float64(in.cfg.Latency))
		if sleep > 0 {
			in.counts.Latencies++
		}
	}
	in.mu.Unlock()
	if sleep > 0 {
		in.cfg.Sleep(sleep)
	}
	return nil
}

// WarehouseHook returns a store.Hook injecting faults at the warehouse's
// I/O seams: reads roll the transient/missing/corrupt classes; writes roll
// CrashWrites and, when it fires, return a simulated *store.Crash whose
// point cycles deterministically.
func (in *Injector) WarehouseHook() store.Hook {
	return func(op store.Op, name string, month int) error {
		site := fmt.Sprintf("%s:%s", op, name)
		switch op {
		case store.OpWritePartition, store.OpStageDay:
			in.mu.Lock()
			attempt := in.nextAttempt(site)
			crash := in.roll("crash", site, attempt) < in.cfg.CrashWrites
			var point store.CrashPoint
			if crash {
				in.counts.Crashes++
				point = store.CrashPoint(in.roll("crash-point", site, attempt) * 3)
			}
			in.mu.Unlock()
			if crash {
				return &store.Crash{Point: point}
			}
			return nil
		default:
			return in.readFault(site, []int{month})
		}
	}
}

// Reader wraps a per-table reader with read faults.
type Reader struct {
	inner features.TableReader
	inj   *Injector
}

// NewReader wraps r.
func NewReader(r features.TableReader, inj *Injector) Reader {
	return Reader{inner: r, inj: inj}
}

// ReadMonths implements features.TableReader.
func (r Reader) ReadMonths(name string, months []int) (*table.Table, error) {
	if err := r.inj.readFault("read:"+name, months); err != nil {
		return nil, err
	}
	return r.inner.ReadMonths(name, months)
}

// Source wraps a reader-backed source (e.g. core.WarehouseSource) with the
// injector: per-table reads and truth reads roll faults; window assembly
// goes through the standard loaders so retry/degraded layers stacked above
// see exactly the per-table failures they would see in production.
type Source struct {
	inner core.ReaderSource
	inj   *Injector
}

// Wrap builds a faulty view of src.
func Wrap(src core.ReaderSource, inj *Injector) *Source {
	return &Source{inner: src, inj: inj}
}

// DaysPerMonth implements core.Source.
func (s *Source) DaysPerMonth() int { return s.inner.DaysPerMonth() }

// TableReader implements core.ReaderSource.
func (s *Source) TableReader() features.TableReader {
	return NewReader(s.inner.TableReader(), s.inj)
}

// Tables implements core.Source via the strict loader over the faulty
// reader.
func (s *Source) Tables(win features.Window) (features.Tables, error) {
	return features.LoadTablesFrom(s.TableReader(), win, s.inner.DaysPerMonth())
}

// TablesPartial implements core.PartialSource via the degraded loader over
// the faulty reader.
func (s *Source) TablesPartial(win features.Window) (features.Tables, []string, error) {
	return features.LoadTablesPartial(s.TableReader(), win, s.inner.DaysPerMonth())
}

// Truth implements core.Source with read faults on the truth feed.
func (s *Source) Truth(month int) (*table.Table, error) {
	if err := s.inj.readFault("truth", []int{month}); err != nil {
		return nil, err
	}
	return s.inner.Truth(month)
}

package faults

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

// fakeSleep records requested sleep durations without sleeping.
type fakeSleep struct{ total atomic.Int64 }

func (f *fakeSleep) sleep(d time.Duration) { f.total.Add(int64(d)) }

func newProxy(t *testing.T, upstream string, cfg NetConfig) *Proxy {
	t.Helper()
	p, err := NewProxy("127.0.0.1:0", upstream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// exchange dials addr, writes payload, and reads the full echo back.
// It reports whether the round trip survived.
func exchange(t *testing.T, addr string, payload []byte) ([]byte, bool) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, false
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.Write(payload); err != nil {
		return nil, false
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	got, err := io.ReadAll(c)
	if err != nil || len(got) != len(payload) {
		return got, false
	}
	return got, true
}

// TestProxyPassthrough: the zero config forwards bit-exactly.
func TestProxyPassthrough(t *testing.T) {
	p := newProxy(t, echoServer(t), NetConfig{})
	payload := bytes.Repeat([]byte("telco"), 10_000)
	got, ok := exchange(t, p.Addr(), payload)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("passthrough corrupted: ok=%v got %d bytes want %d", ok, len(got), len(payload))
	}
	c := p.Counts()
	if c.Conns != 1 || c.Resets != 0 {
		t.Fatalf("counts = %+v", c)
	}
	if c.BytesIn != uint64(len(payload)) || c.BytesOut != uint64(len(payload)) {
		t.Fatalf("forwarded bytes = %d/%d, want %d", c.BytesIn, c.BytesOut, len(payload))
	}
}

// TestProxyResetDeterminism: the reproducibility contract — the same seed
// condemns the same connections, across separate proxy instances.
func TestProxyResetDeterminism(t *testing.T) {
	upstream := echoServer(t)
	payload := bytes.Repeat([]byte("x"), 4096)
	pattern := func(seed int64) string {
		p := newProxy(t, upstream, NetConfig{Seed: seed, Site: "d", Reset: 0.5})
		var b []byte
		for i := 0; i < 24; i++ {
			if _, ok := exchange(t, p.Addr(), payload); ok {
				b = append(b, 'o')
			} else {
				b = append(b, 'x')
			}
		}
		return string(b)
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Fatalf("same seed diverged:\n  %s\n  %s", a, b)
	}
	if !bytes.ContainsRune([]byte(a), 'x') || !bytes.ContainsRune([]byte(a), 'o') {
		t.Fatalf("pattern %s should mix survivors and resets at Reset=0.5", a)
	}
	if c := pattern(8); c == a {
		t.Logf("seeds 7 and 8 coincide (%s); suspicious but possible", c)
	}
}

// TestProxyResetAllKills: Reset=1 condemns every connection within its
// reset window.
func TestProxyResetAllKills(t *testing.T) {
	p := newProxy(t, echoServer(t), NetConfig{Seed: 1, Reset: 1})
	payload := bytes.Repeat([]byte("y"), 16<<10) // 2× the default window
	for i := 0; i < 5; i++ {
		if _, ok := exchange(t, p.Addr(), payload); ok {
			t.Fatalf("conn %d survived Reset=1", i)
		}
	}
	if c := p.Counts(); c.Resets != 5 {
		t.Fatalf("resets = %d, want 5", c.Resets)
	}
}

// TestProxyHTTPUnderLatency: a real HTTP exchange survives read/write
// latency and stalls (fake clock), and the faults actually fire.
func TestProxyHTTPUnderLatency(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "pong %s", r.URL.Path)
	})}
	go srv.Serve(ln)
	defer srv.Close()

	fs := &fakeSleep{}
	p := newProxy(t, ln.Addr().String(), NetConfig{
		Seed: 3, Site: "http",
		ReadLatency: 50 * time.Millisecond, WriteLatency: 50 * time.Millisecond,
		// Small window so the stall offset lands inside a few short HTTP
		// exchanges on the keep-alive connection.
		ResetWindow: 256,
		Stall:       1, StallDuration: time.Second,
		PartialWrite: 1,
		Sleep:        fs.sleep,
	})
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 4; i++ {
		resp, err := client.Get(fmt.Sprintf("http://%s/p%d", p.Addr(), i))
		if err != nil {
			t.Fatalf("GET %d through faulty proxy: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want := fmt.Sprintf("pong /p%d", i); string(body) != want {
			t.Fatalf("GET %d = %q, want %q", i, body, want)
		}
	}
	c := p.Counts()
	if c.Delays == 0 || c.Stalls == 0 || c.Partials == 0 {
		t.Fatalf("faults did not fire: %+v", c)
	}
	if fs.total.Load() == 0 {
		t.Fatal("no sleep was requested")
	}
}

// TestProxyBandwidthPacing: a capped connection requests sleeps summing to
// roughly bytes/rate in each direction.
func TestProxyBandwidthPacing(t *testing.T) {
	fs := &fakeSleep{}
	p := newProxy(t, echoServer(t), NetConfig{Seed: 1, Bandwidth: 1000, Sleep: fs.sleep})
	payload := bytes.Repeat([]byte("z"), 500)
	if _, ok := exchange(t, p.Addr(), payload); !ok {
		t.Fatal("exchange failed")
	}
	// 500 bytes at 1000 B/s in each direction ≈ 1s total requested sleep.
	got := time.Duration(fs.total.Load())
	if got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Fatalf("paced sleep = %v, want ≈1s", got)
	}
}

// TestProxyAcceptLatency: accept delay fires before upstream dial.
func TestProxyAcceptLatency(t *testing.T) {
	fs := &fakeSleep{}
	p := newProxy(t, echoServer(t), NetConfig{Seed: 9, AcceptLatency: time.Second, Sleep: fs.sleep})
	if _, ok := exchange(t, p.Addr(), []byte("hi")); !ok {
		t.Fatal("exchange failed")
	}
	if c := p.Counts(); c.Delays == 0 {
		t.Fatalf("accept latency never fired: %+v", c)
	}
}

// TestProxyCloseUnblocks: Close tears down live connections promptly.
func TestProxyCloseUnblocks(t *testing.T) {
	p := newProxy(t, echoServer(t), NetConfig{})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live connection")
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err == nil {
		// Drain until the close is visible.
		if _, err := c.Read(buf); err == nil {
			t.Fatal("connection still open after proxy Close")
		}
	}
}

// Package codec implements the repository's binary persistence framing,
// shared by every model/artifact format: an ASCII magic outside the
// checksum, a varint/float64/string body, and a trailing CRC32 (IEEE) over
// the body. The tree package's forest format (TCRF) defined the layout;
// codec extracts it so the full pipeline artifact (core), topic models,
// binarizers and boosted ensembles all frame their bytes identically.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt is the sentinel wrapped by every structural, checksum or
// framing failure on the read side.
var ErrCorrupt = errors.New("codec: corrupt data")

// Writer frames a binary stream: NewWriter emits the magic (excluded from
// the checksum), the value methods append the body while feeding the CRC,
// and Close writes the CRC32 trailer and flushes. Errors are sticky; check
// the one returned by Close.
type Writer struct {
	w   *bufio.Writer
	crc interface {
		Write([]byte) (int, error)
		Sum32() uint32
	}
	n   int64
	err error
}

// NewWriter starts a framed stream on w by writing magic verbatim.
func NewWriter(w io.Writer, magic string) *Writer {
	cw := &Writer{w: bufio.NewWriterSize(w, 1<<16), crc: crc32.NewIEEE()}
	if _, err := cw.w.WriteString(magic); err != nil {
		cw.err = err
	}
	cw.n += int64(len(magic))
	return cw
}

// Write appends raw bytes to the body (and the checksum).
func (cw *Writer) Write(p []byte) (int, error) {
	cw.crc.Write(p)
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	if err != nil && cw.err == nil {
		cw.err = err
	}
	return n, err
}

// Uvarint appends an unsigned varint.
func (cw *Writer) Uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	cw.Write(buf[:n])
}

// Int appends a signed value (zig-zag varint).
func (cw *Writer) Int(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	cw.Write(buf[:n])
}

// Float appends a float64 as its exact IEEE-754 bits (little endian), so
// round trips are bit-identical.
func (cw *Writer) Float(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	cw.Write(buf[:])
}

// Floats appends a length-prefixed float64 slice.
func (cw *Writer) Floats(v []float64) {
	cw.Uvarint(uint64(len(v)))
	for _, x := range v {
		cw.Float(x)
	}
}

// Str appends a length-prefixed string.
func (cw *Writer) Str(s string) {
	cw.Uvarint(uint64(len(s)))
	cw.Write([]byte(s))
}

// Strs appends a length-prefixed string slice.
func (cw *Writer) Strs(s []string) {
	cw.Uvarint(uint64(len(s)))
	for _, x := range s {
		cw.Str(x)
	}
}

// Bytes appends a length-prefixed byte block (used to nest independently
// framed sub-formats, e.g. a whole forest file inside an artifact).
func (cw *Writer) Bytes(b []byte) {
	cw.Uvarint(uint64(len(b)))
	cw.Write(b)
}

// Close writes the CRC32 trailer, flushes, and returns the total bytes
// written (magic + body + trailer) and the first error encountered.
func (cw *Writer) Close() (int64, error) {
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], cw.crc.Sum32())
	if _, err := cw.w.Write(sum[:]); err != nil && cw.err == nil {
		cw.err = err
	}
	cw.n += 4
	if err := cw.w.Flush(); err != nil && cw.err == nil {
		cw.err = err
	}
	return cw.n, cw.err
}

// Reader decodes a framed stream produced by Writer. NewReader validates
// magic and checksum up front; the value methods then never fail mid-way —
// they record the first error, return zero values after it, and Close
// reports it along with any trailing garbage.
type Reader struct {
	b   []byte
	pos int
	err error
}

// NewReader reads all of r, validates the magic prefix and the CRC32
// trailer, and positions the reader at the start of the body.
func NewReader(r io.Reader, magic string) (*Reader, error) {
	data, err := io.ReadAll(bufio.NewReaderSize(r, 1<<16))
	if err != nil {
		return nil, err
	}
	return NewReaderBytes(data, magic)
}

// NewReaderBytes is NewReader over an in-memory buffer.
func NewReaderBytes(data []byte, magic string) (*Reader, error) {
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic (want %q)", ErrCorrupt, magic)
	}
	body := data[len(magic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &Reader{b: body}, nil
}

// Fail records a decoding error (e.g. an out-of-range value found by the
// caller) if none is recorded yet.
func (rd *Reader) Fail(msg string) {
	if rd.err == nil {
		rd.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

// Err returns the first recorded error, or nil.
func (rd *Reader) Err() error { return rd.err }

// Uvarint reads an unsigned varint.
func (rd *Reader) Uvarint() uint64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Uvarint(rd.b[rd.pos:])
	if n <= 0 {
		rd.Fail("bad uvarint")
		return 0
	}
	rd.pos += n
	return v
}

// Len reads a uvarint and validates it as a length against the bytes that
// remain, so corrupt counts fail instead of allocating absurd slices.
func (rd *Reader) Len() int {
	v := rd.Uvarint()
	if rd.err == nil && v > uint64(len(rd.b)-rd.pos) {
		rd.Fail(fmt.Sprintf("length %d exceeds %d remaining bytes", v, len(rd.b)-rd.pos))
		return 0
	}
	return int(v)
}

// Int reads a signed (zig-zag) varint.
func (rd *Reader) Int() int64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Varint(rd.b[rd.pos:])
	if n <= 0 {
		rd.Fail("bad varint")
		return 0
	}
	rd.pos += n
	return v
}

// Float reads a float64.
func (rd *Reader) Float() float64 {
	if rd.err != nil {
		return 0
	}
	if rd.pos+8 > len(rd.b) {
		rd.Fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(rd.b[rd.pos:]))
	rd.pos += 8
	return v
}

// Floats reads a length-prefixed float64 slice.
func (rd *Reader) Floats() []float64 {
	n := rd.Len()
	if rd.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = rd.Float()
	}
	return out
}

// Str reads a length-prefixed string.
func (rd *Reader) Str() string {
	n := rd.Len()
	if rd.err != nil {
		return ""
	}
	s := string(rd.b[rd.pos : rd.pos+n])
	rd.pos += n
	return s
}

// Strs reads a length-prefixed string slice.
func (rd *Reader) Strs() []string {
	n := rd.Len()
	if rd.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = rd.Str()
	}
	return out
}

// Bytes reads a length-prefixed byte block (shared with the underlying
// buffer).
func (rd *Reader) Bytes() []byte {
	n := rd.Len()
	if rd.err != nil {
		return nil
	}
	b := rd.b[rd.pos : rd.pos+n]
	rd.pos += n
	return b
}

// Close verifies the body was fully consumed and returns the first error.
func (rd *Reader) Close() error {
	if rd.err != nil {
		return rd.err
	}
	if rd.pos != len(rd.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rd.b)-rd.pos)
	}
	return nil
}

package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "TEST")
	w.Uvarint(42)
	w.Int(-7)
	w.Float(math.Pi)
	w.Float(math.Inf(-1))
	w.Floats([]float64{1.5, -2.25, math.SmallestNonzeroFloat64})
	w.Str("hello")
	w.Strs([]string{"a", "", "bc"})
	w.Bytes([]byte{9, 8, 7})
	n, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("Close reported %d bytes, wrote %d", n, buf.Len())
	}

	r, err := NewReaderBytes(buf.Bytes(), "TEST")
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Uvarint(); v != 42 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Errorf("int = %d", v)
	}
	if v := r.Float(); v != math.Pi {
		t.Errorf("float = %v", v)
	}
	if v := r.Float(); !math.IsInf(v, -1) {
		t.Errorf("inf = %v", v)
	}
	fs := r.Floats()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.25 || fs[2] != math.SmallestNonzeroFloat64 {
		t.Errorf("floats = %v", fs)
	}
	if s := r.Str(); s != "hello" {
		t.Errorf("str = %q", s)
	}
	ss := r.Strs()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "bc" {
		t.Errorf("strs = %v", ss)
	}
	bs := r.Bytes()
	if len(bs) != 3 || bs[0] != 9 {
		t.Errorf("bytes = %v", bs)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicAndChecksum(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "GOOD")
	w.Str("payload")
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReaderBytes(buf.Bytes(), "EVIL"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v", err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[6] ^= 0xff
	if _, err := NewReaderBytes(data, "GOOD"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped byte: err = %v", err)
	}
	if _, err := NewReaderBytes([]byte("GO"), "GOOD"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: err = %v", err)
	}
}

func TestReaderFailures(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "M")
	w.Uvarint(1 << 40) // absurd length prefix for the Len check
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReaderBytes(buf.Bytes(), "M")
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Str(); s != "" {
		t.Errorf("str on corrupt length = %q", s)
	}
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("want ErrCorrupt, got %v", err)
	}

	// Trailing garbage is rejected by Close.
	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2, "M")
	w2.Uvarint(5)
	w2.Uvarint(6)
	if _, err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := NewReaderBytes(buf2.Bytes(), "M")
	if err != nil {
		t.Fatal(err)
	}
	_ = r2.Uvarint()
	if err := r2.Close(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: err = %v", err)
	}
}

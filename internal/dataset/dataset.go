// Package dataset provides the dense labeled dataset representation shared
// by every learning algorithm in this repository (random forest, GBDT,
// logistic regression, factorization machines) and by the evaluation and
// sampling layers.
//
// A Dataset is a row-major dense matrix of float64 feature values plus a
// parallel label vector and optional per-instance weights. The churn task is
// binary (label 0 = non-churner, 1 = churner); the retention task is
// multi-class (label 0..C-1 identifying the accepted offer).
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a dense labeled sample matrix. Rows are instances (customers in
// a given month), columns are features from the wide table.
type Dataset struct {
	// FeatureNames holds one name per column, aligned with X's columns.
	FeatureNames []string
	// X is the row-major feature matrix: X[i] is instance i's feature vector.
	X [][]float64
	// Y is the label vector: Y[i] is the class of instance i.
	Y []int
	// W is the optional per-instance weight vector. Nil means uniform 1.0.
	W []float64
}

// New returns an empty dataset with the given feature names.
func New(featureNames []string) *Dataset {
	return &Dataset{FeatureNames: featureNames}
}

// NumInstances returns the number of rows.
func (d *Dataset) NumInstances() int { return len(d.X) }

// NumFeatures returns the number of columns.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// Add appends one labeled instance. The feature vector length must match the
// number of feature names.
func (d *Dataset) Add(x []float64, y int) error {
	if len(x) != len(d.FeatureNames) {
		return fmt.Errorf("dataset: instance has %d features, want %d", len(x), len(d.FeatureNames))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	return nil
}

// Weight returns instance i's weight (1.0 when no weights are set).
func (d *Dataset) Weight(i int) float64 {
	if d.W == nil {
		return 1.0
	}
	return d.W[i]
}

// Validate checks internal consistency: matching lengths and finite shape.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d instances but %d labels", len(d.X), len(d.Y))
	}
	if d.W != nil && len(d.W) != len(d.X) {
		return fmt.Errorf("dataset: %d instances but %d weights", len(d.X), len(d.W))
	}
	for i, row := range d.X {
		if len(row) != len(d.FeatureNames) {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(row), len(d.FeatureNames))
		}
	}
	return nil
}

// NumClasses returns 1 + the maximum label value, i.e. the number of classes
// assuming labels are 0-based and contiguous.
func (d *Dataset) NumClasses() int {
	maxY := -1
	for _, y := range d.Y {
		if y > maxY {
			maxY = y
		}
	}
	return maxY + 1
}

// ClassCounts returns the number of instances per class label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Subset returns a new dataset containing the rows at the given indices. The
// feature-name slice is shared; rows are shared (not copied) since training
// code never mutates feature vectors.
func (d *Dataset) Subset(indices []int) *Dataset {
	sub := &Dataset{
		FeatureNames: d.FeatureNames,
		X:            make([][]float64, len(indices)),
		Y:            make([]int, len(indices)),
	}
	if d.W != nil {
		sub.W = make([]float64, len(indices))
	}
	for j, i := range indices {
		sub.X[j] = d.X[i]
		sub.Y[j] = d.Y[i]
		if d.W != nil {
			sub.W[j] = d.W[i]
		}
	}
	return sub
}

// Clone returns a deep copy of the dataset (rows copied).
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		FeatureNames: append([]string(nil), d.FeatureNames...),
		X:            make([][]float64, len(d.X)),
		Y:            append([]int(nil), d.Y...),
	}
	for i, row := range d.X {
		c.X[i] = append([]float64(nil), row...)
	}
	if d.W != nil {
		c.W = append([]float64(nil), d.W...)
	}
	return c
}

// Append concatenates other's rows onto d. Feature names must match exactly.
func (d *Dataset) Append(other *Dataset) error {
	if len(d.FeatureNames) != len(other.FeatureNames) {
		return errors.New("dataset: append with mismatched feature count")
	}
	for i, name := range d.FeatureNames {
		if other.FeatureNames[i] != name {
			return fmt.Errorf("dataset: append feature %d name mismatch: %q vs %q", i, name, other.FeatureNames[i])
		}
	}
	d.X = append(d.X, other.X...)
	d.Y = append(d.Y, other.Y...)
	switch {
	case d.W == nil && other.W == nil:
	case d.W != nil && other.W != nil:
		d.W = append(d.W, other.W...)
	default:
		return errors.New("dataset: append with mismatched weight presence")
	}
	return nil
}

// Shuffle permutes the rows in place using the given RNG.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
		if d.W != nil {
			d.W[i], d.W[j] = d.W[j], d.W[i]
		}
	})
}

// Split partitions the dataset into two parts, the first containing
// round(frac*n) rows. The receiver is not modified.
func (d *Dataset) Split(frac float64, rng *rand.Rand) (*Dataset, *Dataset) {
	n := d.NumInstances()
	perm := rng.Perm(n)
	cut := int(frac*float64(n) + 0.5)
	if cut < 0 {
		cut = 0
	}
	if cut > n {
		cut = n
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// Column returns a copy of feature column j.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, len(d.X))
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col
}

// FeatureIndex returns the column index of the named feature, or -1.
func (d *Dataset) FeatureIndex(name string) int {
	for i, n := range d.FeatureNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Standardize scales every column to zero mean and unit variance in place,
// returning the per-column means and standard deviations so the same
// transform can be applied to test data via ApplyStandardize. Columns with
// zero variance are left centered only.
func (d *Dataset) Standardize() (means, stds []float64) {
	nf := d.NumFeatures()
	n := float64(d.NumInstances())
	means = make([]float64, nf)
	stds = make([]float64, nf)
	if n == 0 {
		for j := range stds {
			stds[j] = 1
		}
		return means, stds
	}
	for _, row := range d.X {
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= n
	}
	for _, row := range d.X {
		for j, v := range row {
			dv := v - means[j]
			stds[j] += dv * dv
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / n)
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	d.ApplyStandardize(means, stds)
	return means, stds
}

// ApplyStandardize applies a previously computed standardization in place.
func (d *Dataset) ApplyStandardize(means, stds []float64) {
	for _, row := range d.X {
		for j := range row {
			row[j] = (row[j] - means[j]) / stds[j]
		}
	}
}

package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sample(t *testing.T) *Dataset {
	t.Helper()
	d := New([]string{"a", "b"})
	rows := []struct {
		x []float64
		y int
	}{
		{[]float64{1, 2}, 0}, {[]float64{3, 4}, 1}, {[]float64{5, 6}, 0}, {[]float64{7, 8}, 1},
	}
	for _, r := range rows {
		if err := d.Add(r.x, r.y); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAddValidates(t *testing.T) {
	d := New([]string{"a", "b"})
	if err := d.Add([]float64{1}, 0); err == nil {
		t.Error("want error for wrong width")
	}
	if err := d.Add([]float64{1, 2}, 0); err != nil {
		t.Errorf("Add: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := sample(t)
	d.Y = d.Y[:2]
	if err := d.Validate(); err == nil {
		t.Error("want error for label length mismatch")
	}
	d = sample(t)
	d.W = []float64{1}
	if err := d.Validate(); err == nil {
		t.Error("want error for weight length mismatch")
	}
	d = sample(t)
	d.X[1] = []float64{1}
	if err := d.Validate(); err == nil {
		t.Error("want error for ragged row")
	}
}

func TestClassCountsAndClasses(t *testing.T) {
	d := sample(t)
	if d.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", d.NumClasses())
	}
	counts := d.ClassCounts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("ClassCounts = %v", counts)
	}
}

func TestSubsetSharesRows(t *testing.T) {
	d := sample(t)
	s := d.Subset([]int{3, 0})
	if s.NumInstances() != 2 || s.Y[0] != 1 || s.X[1][0] != 1 {
		t.Errorf("Subset wrong: %+v", s)
	}
	d.X[3][0] = 99
	if s.X[0][0] != 99 {
		t.Error("Subset should share row storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sample(t)
	c := d.Clone()
	d.X[0][0] = 42
	if c.X[0][0] == 42 {
		t.Error("Clone shares row storage")
	}
}

func TestAppendChecksSchema(t *testing.T) {
	d := sample(t)
	other := New([]string{"a", "zzz"})
	other.Add([]float64{0, 0}, 0)
	if err := d.Append(other); err == nil {
		t.Error("want error for name mismatch")
	}
	ok := sample(t)
	if err := d.Append(ok); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if d.NumInstances() != 8 {
		t.Errorf("rows = %d, want 8", d.NumInstances())
	}
	weighted := sample(t)
	weighted.W = []float64{1, 1, 1, 1}
	if err := d.Append(weighted); err == nil {
		t.Error("want error for mismatched weight presence")
	}
}

func TestWeightDefaults(t *testing.T) {
	d := sample(t)
	if d.Weight(0) != 1 {
		t.Errorf("default weight = %g", d.Weight(0))
	}
	d.W = []float64{2, 1, 1, 1}
	if d.Weight(0) != 2 {
		t.Errorf("weight = %g", d.Weight(0))
	}
}

func TestShuffleDeterministicAndPermutes(t *testing.T) {
	a := sample(t)
	b := sample(t)
	a.Shuffle(rand.New(rand.NewSource(5)))
	b.Shuffle(rand.New(rand.NewSource(5)))
	for i := range a.Y {
		if a.Y[i] != b.Y[i] || a.X[i][0] != b.X[i][0] {
			t.Fatal("same-seed shuffles differ")
		}
	}
	// Label still aligned with its row.
	for i := range a.Y {
		wantY := 0
		if a.X[i][0] == 3 || a.X[i][0] == 7 {
			wantY = 1
		}
		if a.Y[i] != wantY {
			t.Fatalf("shuffle broke row/label alignment at %d", i)
		}
	}
}

func TestSplitSizes(t *testing.T) {
	d := sample(t)
	l, r := d.Split(0.5, rand.New(rand.NewSource(1)))
	if l.NumInstances() != 2 || r.NumInstances() != 2 {
		t.Errorf("split sizes %d/%d", l.NumInstances(), r.NumInstances())
	}
}

func TestColumnAndFeatureIndex(t *testing.T) {
	d := sample(t)
	col := d.Column(1)
	if col[2] != 6 {
		t.Errorf("Column(1)[2] = %g", col[2])
	}
	if d.FeatureIndex("b") != 1 || d.FeatureIndex("zz") != -1 {
		t.Error("FeatureIndex wrong")
	}
}

func TestStandardizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New([]string{"a", "b", "c"})
		n := 2 + rng.Intn(100)
		for i := 0; i < n; i++ {
			d.Add([]float64{rng.NormFloat64() * 10, rng.Float64(), 5}, rng.Intn(2))
		}
		means, stds := d.Standardize()
		_ = means
		// Post-standardization: each non-constant column has ~0 mean, ~1 std.
		for j := 0; j < 2; j++ {
			m, v := 0.0, 0.0
			for _, row := range d.X {
				m += row[j]
			}
			m /= float64(n)
			for _, row := range d.X {
				v += (row[j] - m) * (row[j] - m)
			}
			v /= float64(n)
			if math.Abs(m) > 1e-8 || math.Abs(math.Sqrt(v)-1) > 1e-6 {
				return false
			}
		}
		// Constant column: centered, std treated as 1.
		if stds[2] != 1 {
			return false
		}
		for _, row := range d.X {
			if row[2] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestApplyStandardizeMatchesTrain(t *testing.T) {
	train := sample(t)
	test := sample(t)
	means, stds := train.Standardize()
	test.ApplyStandardize(means, stds)
	for i := range train.X {
		for j := range train.X[i] {
			if math.Abs(train.X[i][j]-test.X[i][j]) > 1e-12 {
				t.Fatalf("transform mismatch at (%d,%d)", i, j)
			}
		}
	}
}

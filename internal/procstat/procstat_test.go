package procstat

import (
	"runtime"
	"testing"
)

func TestPeakRSSBytes(t *testing.T) {
	peak, ok := PeakRSSBytes()
	if runtime.GOOS != "linux" {
		t.Skipf("VmHWM is linux-only (got ok=%v)", ok)
	}
	if !ok {
		t.Fatal("PeakRSSBytes unavailable on linux")
	}
	// A running Go test binary occupies at least a megabyte and far less
	// than a terabyte; anything outside that is a parse bug.
	if peak < 1<<20 || peak > 1<<40 {
		t.Fatalf("peak RSS = %d bytes, implausible", peak)
	}
}

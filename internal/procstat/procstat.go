// Package procstat reads process resource statistics for memory-budget
// gates (the scale smoke test's RSS ceiling and the sharded build
// benchmarks). Linux-only fields degrade to "unavailable" elsewhere.
package procstat

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes returns the process's high-water resident set size (VmHWM)
// and whether it could be determined. The peak is tracked by the kernel
// from process start, so it captures allocation spikes GC has since
// returned — exactly what an out-of-core memory budget must bound.
func PeakRSSBytes() (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "VmHWM:"))
		if len(fields) < 2 || fields[1] != "kB" {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}

package features

import (
	"fmt"
	"sort"

	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// Tables bundles the raw tables covering one observation window. Event
// tables (calls, messages, recharges, complaints, web, search, locations)
// may span several months; snapshot tables (billing, customers) are monthly.
type Tables struct {
	Calls      *table.Table
	Messages   *table.Table
	Recharges  *table.Table
	Billing    *table.Table
	Customers  *table.Table
	Complaints *table.Table
	Web        *table.Table
	Search     *table.Table
	Locations  *table.Table
}

// Window is an inclusive range of absolute days. Absolute day 1 is day 1 of
// month 1; month m day d is (m-1)*daysPerMonth + d. A window shorter or
// shifted relative to month boundaries implements the Velocity experiment's
// sliding update (Table 5).
type Window struct {
	FromAbs, ToAbs int
}

// AbsDay converts (month, day) to an absolute day.
func AbsDay(month, day, daysPerMonth int) int {
	return (month-1)*daysPerMonth + day
}

// MonthWindow is the whole-month window for month m.
func MonthWindow(month, daysPerMonth int) Window {
	return Window{FromAbs: AbsDay(month, 1, daysPerMonth), ToAbs: AbsDay(month, daysPerMonth, daysPerMonth)}
}

// LastMonth returns the month containing the window's final day.
func (w Window) LastMonth(daysPerMonth int) int {
	return (w.ToAbs-1)/daysPerMonth + 1
}

// Months returns every month the window overlaps, ascending.
func (w Window) Months(daysPerMonth int) []int {
	first := (w.FromAbs-1)/daysPerMonth + 1
	last := w.LastMonth(daysPerMonth)
	months := make([]int, 0, last-first+1)
	for m := first; m <= last; m++ {
		months = append(months, m)
	}
	return months
}

// LoadTables reads every raw table overlapping the window from the
// warehouse.
func LoadTables(wh *store.Warehouse, win Window, daysPerMonth int) (Tables, error) {
	months := win.Months(daysPerMonth)
	var t Tables
	read := func(name string) (*table.Table, error) { return wh.ReadMonths(name, months) }
	var err error
	if t.Calls, err = read(synth.TableCalls); err != nil {
		return t, fmt.Errorf("features: load calls: %w", err)
	}
	if t.Messages, err = read(synth.TableMessages); err != nil {
		return t, fmt.Errorf("features: load messages: %w", err)
	}
	if t.Recharges, err = read(synth.TableRecharges); err != nil {
		return t, fmt.Errorf("features: load recharges: %w", err)
	}
	if t.Billing, err = read(synth.TableBilling); err != nil {
		return t, fmt.Errorf("features: load billing: %w", err)
	}
	if t.Customers, err = read(synth.TableCustomers); err != nil {
		return t, fmt.Errorf("features: load customers: %w", err)
	}
	if t.Complaints, err = read(synth.TableComplaints); err != nil {
		return t, fmt.Errorf("features: load complaints: %w", err)
	}
	if t.Web, err = read(synth.TableWeb); err != nil {
		return t, fmt.Errorf("features: load web: %w", err)
	}
	if t.Search, err = read(synth.TableSearch); err != nil {
		return t, fmt.Errorf("features: load search: %w", err)
	}
	if t.Locations, err = read(synth.TableLocations); err != nil {
		return t, fmt.Errorf("features: load locations: %w", err)
	}
	return t, nil
}

// FromMonthData builds Tables directly from in-memory simulator output
// (concatenating the given months), bypassing the warehouse. A single month
// shares the simulator's tables; multiple months are concatenated into fresh
// tables so the simulator output is never mutated.
func FromMonthData(months []*synth.MonthData) (Tables, error) {
	var t Tables
	if len(months) == 0 {
		return t, nil
	}
	if len(months) == 1 {
		md := months[0]
		return Tables{
			Calls: md.Calls, Messages: md.Messages, Recharges: md.Recharges,
			Billing: md.Billing, Customers: md.Customers, Complaints: md.Complaints,
			Web: md.Web, Search: md.Search, Locations: md.Locations,
		}, nil
	}
	first := months[0]
	t = Tables{
		Calls:      table.NewTable(first.Calls.Schema),
		Messages:   table.NewTable(first.Messages.Schema),
		Recharges:  table.NewTable(first.Recharges.Schema),
		Billing:    table.NewTable(first.Billing.Schema),
		Customers:  table.NewTable(first.Customers.Schema),
		Complaints: table.NewTable(first.Complaints.Schema),
		Web:        table.NewTable(first.Web.Schema),
		Search:     table.NewTable(first.Search.Schema),
		Locations:  table.NewTable(first.Locations.Schema),
	}
	for _, md := range months {
		pairs := []struct {
			dst *table.Table
			src *table.Table
		}{
			{t.Calls, md.Calls}, {t.Messages, md.Messages}, {t.Recharges, md.Recharges},
			{t.Billing, md.Billing}, {t.Customers, md.Customers}, {t.Complaints, md.Complaints},
			{t.Web, md.Web}, {t.Search, md.Search}, {t.Locations, md.Locations},
		}
		for _, p := range pairs {
			if err := p.dst.AppendTable(p.src); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// inWindow returns a row predicate filtering an event table (with month and
// day columns) to the window.
func inWindow(t *table.Table, win Window, daysPerMonth int) func(int) bool {
	months := t.MustCol("month").Ints
	days := t.MustCol("day").Ints
	return func(i int) bool {
		abs := AbsDay(int(months[i]), int(days[i]), daysPerMonth)
		return abs >= win.FromAbs && abs <= win.ToAbs
	}
}

// SnapshotMonth returns the month whose end-of-month snapshot tables
// (billing, demographics) a window may use: the month containing ToAbs if
// the window reaches that month's last day, otherwise the month before.
// Monthly snapshots are produced by BSS at month end (Section 5.4: "some
// big tables ... are summarized automatically by BSS monthly"), so a window
// ending mid-month must not see the in-progress month's summary.
func (w Window) SnapshotMonth(daysPerMonth int) int {
	m := w.LastMonth(daysPerMonth)
	if w.ToAbs == AbsDay(m, daysPerMonth, daysPerMonth) {
		return m
	}
	return m - 1
}

// snapshotMonth filters a monthly snapshot table to the window's snapshot
// month.
func snapshotMonth(t *table.Table, win Window, daysPerMonth int) *table.Table {
	m := int64(win.SnapshotMonth(daysPerMonth))
	months := t.MustCol("month").Ints
	return t.Filter(func(i int) bool { return months[i] == m })
}

// colMap converts a (key, value) pair of columns into a map.
func colMap(t *table.Table, valueCol string) map[int64]float64 {
	keys := t.MustCol("imsi").Ints
	col := t.MustCol(valueCol)
	out := make(map[int64]float64, len(keys))
	for i, k := range keys {
		out[k] = col.Float(i)
	}
	return out
}

// sumBy filters t by pred and sums valueCol per customer via the engine's
// group-by (the paper's Spark SQL aggregation queries).
func sumBy(t *table.Table, pred func(int) bool, valueCol string) map[int64]float64 {
	ft := t.Filter(pred)
	g, err := table.GroupBy(ft, "imsi", table.Agg{Col: valueCol, Func: table.Sum, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: sumBy(%s): %v", valueCol, err))
	}
	return colMap(g, "v")
}

func countBy(t *table.Table, pred func(int) bool) map[int64]float64 {
	ft := t.Filter(pred)
	g, err := table.GroupBy(ft, "imsi", table.Agg{Func: table.Count, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: countBy: %v", err))
	}
	return colMap(g, "v")
}

func meanBy(t *table.Table, pred func(int) bool, valueCol string) map[int64]float64 {
	ft := t.Filter(pred)
	g, err := table.GroupBy(ft, "imsi", table.Agg{Col: valueCol, Func: table.Mean, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: meanBy(%s): %v", valueCol, err))
	}
	return colMap(g, "v")
}

func distinctBy(t *table.Table, pred func(int) bool, col string) map[int64]float64 {
	ft := t.Filter(pred)
	g, err := table.GroupBy(ft, "imsi", table.Agg{Col: col, Func: table.CountDistinct, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: distinctBy(%s): %v", col, err))
	}
	return colMap(g, "v")
}

// ratio computes num[id]/den[id] per customer present in den, with def when
// the denominator is missing or zero.
func ratio(num, den map[int64]float64, def float64) map[int64]float64 {
	out := make(map[int64]float64, len(den))
	for id, d := range den {
		if d == 0 {
			out[id] = def
			continue
		}
		out[id] = num[id] / d
	}
	return out
}

func scale(m map[int64]float64, k float64) map[int64]float64 {
	out := make(map[int64]float64, len(m))
	for id, v := range m {
		out[id] = v * k
	}
	return out
}

// BaseFeatures builds the F1 (baseline BSS), F2 (CS KPI/KQI) and F3 (PS
// KPI/KQI + location) columns of the wide table for the given window. The
// customer universe is the window's last-month demographic snapshot.
func BaseFeatures(tbl Tables, win Window, daysPerMonth int) (*Frame, error) {
	cust := snapshotMonth(tbl.Customers, win, daysPerMonth)
	if cust.NumRows() == 0 {
		return nil, fmt.Errorf("features: no customer snapshot for month %d", win.LastMonth(daysPerMonth))
	}
	frame := NewFrame(cust.MustCol("imsi").Ints)
	addF1(frame, tbl, cust, win, daysPerMonth)
	addF2(frame, tbl, win, daysPerMonth)
	addF3(frame, tbl, win, daysPerMonth)
	return frame, nil
}

func addF1(f *Frame, tbl Tables, cust *table.Table, win Window, daysPerMonth int) {
	calls := tbl.Calls
	inWin := inWindow(calls, win, daysPerMonth)
	kind := calls.MustCol("kind").Ints
	mo := calls.MustCol("mo").Ints
	peerOp := calls.MustCol("peer_op").Ints
	success := calls.MustCol("success").Ints
	busy := calls.MustCol("busy").Ints
	fest := calls.MustCol("fest").Ints
	free := calls.MustCol("free").Ints
	gift := calls.MustCol("gift").Ints
	svc := calls.MustCol("svc").Ints
	manual := calls.MustCol("manual").Ints

	and := func(preds ...func(int) bool) func(int) bool {
		return func(i int) bool {
			for _, p := range preds {
				if !p(i) {
					return false
				}
			}
			return true
		}
	}
	isMO := func(i int) bool { return mo[i] == 1 }
	isMT := func(i int) bool { return mo[i] == 0 }
	ok := func(i int) bool { return success[i] == 1 }
	kindIs := func(k int64) func(int) bool { return func(i int) bool { return kind[i] == k } }
	localAny := func(i int) bool { return kind[i] == synth.CallLocalInner || kind[i] == synth.CallLocalOuter }
	notSvc := func(i int) bool { return svc[i] == 0 }

	// Call durations (seconds).
	durCols := []struct {
		name string
		pred func(int) bool
	}{
		{"localbase_inner_call_dur", and(inWin, isMO, ok, kindIs(synth.CallLocalInner), notSvc)},
		{"localbase_outer_call_dur", and(inWin, isMO, ok, kindIs(synth.CallLocalOuter))},
		{"ld_call_dur", and(inWin, isMO, ok, kindIs(synth.CallLongDist))},
		{"roam_call_dur", and(inWin, isMO, ok, kindIs(synth.CallRoam))},
		{"localbase_called_dur", and(inWin, isMT, ok, localAny)},
		{"ld_called_dur", and(inWin, isMT, ok, kindIs(synth.CallLongDist))},
		{"roam_called_dur", and(inWin, isMT, ok, kindIs(synth.CallRoam))},
		{"cm_dur", and(inWin, ok, func(i int) bool { return peerOp[i] == synth.OpChinaMobile })},
		{"ct_dur", and(inWin, ok, func(i int) bool { return peerOp[i] == synth.OpChinaTelecom })},
		{"busy_call_dur", and(inWin, isMO, ok, func(i int) bool { return busy[i] == 1 })},
		{"fest_call_dur", and(inWin, isMO, ok, func(i int) bool { return fest[i] == 1 })},
		{"free_call_dur", and(inWin, ok, func(i int) bool { return free[i] == 1 })},
		{"gift_voice_call_dur", and(inWin, ok, func(i int) bool { return gift[i] == 1 })},
		{"voice_dur", and(inWin, ok)},
		{"caller_dur", and(inWin, isMO, ok)},
	}
	for _, c := range durCols {
		f.AddColumn(F1Baseline, c.name, sumBy(calls, c.pred, "dur"), 0)
	}

	// Call counts.
	cntCols := []struct {
		name string
		pred func(int) bool
	}{
		{"all_call_cnt", inWin},
		{"voice_cnt", and(inWin, ok)},
		{"local_base_call_cnt", and(inWin, isMO, localAny, notSvc)},
		{"ld_call_cnt", and(inWin, isMO, kindIs(synth.CallLongDist))},
		{"roam_call_cnt", and(inWin, isMO, kindIs(synth.CallRoam))},
		{"caller_cnt", and(inWin, isMO)},
		{"call_10010_cnt", and(inWin, func(i int) bool { return svc[i] == 1 })},
		{"call_10010_manual_cnt", and(inWin, func(i int) bool { return manual[i] == 1 })},
	}
	for _, c := range cntCols {
		f.AddColumn(F1Baseline, c.name, countBy(calls, c.pred), 0)
	}

	// Call minutes (duration/60 views the BI system reports separately).
	f.AddColumn(F1Baseline, "local_call_minutes", scale(sumBy(calls, and(inWin, isMO, ok, localAny), "dur"), 1.0/60), 0)
	f.AddColumn(F1Baseline, "toll_call_minutes", scale(sumBy(calls, and(inWin, isMO, ok, kindIs(synth.CallLongDist)), "dur"), 1.0/60), 0)
	f.AddColumn(F1Baseline, "roam_call_minutes", scale(sumBy(calls, and(inWin, isMO, ok, kindIs(synth.CallRoam)), "dur"), 1.0/60), 0)
	f.AddColumn(F1Baseline, "voice_call_minutes", scale(sumBy(calls, and(inWin, ok), "dur"), 1.0/60), 0)

	// Messages.
	msgs := tbl.Messages
	mInWin := inWindow(msgs, win, daysPerMonth)
	mKind := msgs.MustCol("kind").Ints
	mMO := msgs.MustCol("mo").Ints
	mMMS := msgs.MustCol("mms").Ints
	mOp := msgs.MustCol("peer_op").Ints
	mRoamInt := msgs.MustCol("roam_int").Ints
	mGift := msgs.MustCol("gift").Ints

	mIsMO := func(i int) bool { return mMO[i] == 1 }
	mIsMT := func(i int) bool { return mMO[i] == 0 }
	isSMS := func(i int) bool { return mMMS[i] == 0 }
	isMMS := func(i int) bool { return mMMS[i] == 1 }
	p2p := func(i int) bool { return mKind[i] == synth.MsgP2P }
	opIs := func(op int64) func(int) bool { return func(i int) bool { return mOp[i] == op } }

	msgCols := []struct {
		name string
		pred func(int) bool
	}{
		{"sms_p2p_inner_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, opIs(synth.OpSelf))},
		{"sms_p2p_other_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, func(i int) bool { return mOp[i] != synth.OpSelf })},
		{"sms_p2p_cm_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, opIs(synth.OpChinaMobile))},
		{"sms_p2p_ct_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, opIs(synth.OpChinaTelecom))},
		{"sms_info_mo_cnt", and(mInWin, func(i int) bool { return mKind[i] == synth.MsgInfo })},
		{"sms_p2p_roam_int_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, func(i int) bool { return mRoamInt[i] == 1 })},
		{"sms_bill_cnt", and(mInWin, func(i int) bool { return mKind[i] == synth.MsgBilling })},
		{"sms_p2p_mt_cnt", and(mInWin, p2p, mIsMT, isSMS)},
		{"serve_sms_count", and(mInWin, func(i int) bool { return mKind[i] == synth.MsgService })},
		{"mms_cnt", and(mInWin, isMMS)},
		{"mms_p2p_inner_mo_cnt", and(mInWin, p2p, mIsMO, isMMS, opIs(synth.OpSelf))},
		{"mms_p2p_other_mo_cnt", and(mInWin, p2p, mIsMO, isMMS, func(i int) bool { return mOp[i] != synth.OpSelf })},
		{"mms_p2p_mt_cnt", and(mInWin, p2p, mIsMT, isMMS)},
		{"p2p_sms_mo_cnt", and(mInWin, p2p, mIsMO, isSMS)},
		{"gift_sms_mo_cnt", and(mInWin, mIsMO, func(i int) bool { return mGift[i] == 1 })},
	}
	for _, c := range msgCols {
		f.AddColumn(F1Baseline, c.name, countBy(msgs, c.pred), 0)
	}
	f.AddColumn(F1Baseline, "distinct_serve_count",
		distinctBy(msgs, and(mInWin, func(i int) bool { return mKind[i] == synth.MsgService }), "peer"), 0)

	// Billing snapshot (window's last month).
	billing := snapshotMonth(tbl.Billing, win, daysPerMonth)
	for _, c := range []struct{ col, name string }{
		{"balance", "balance"},
		{"total_charge", "total_charge"},
		{"recharge_value", "recharge_value"},
		{"balance_rate", "balance_rate"},
		{"gprs_flux", "gprs_flux"},
		{"gprs_charge", "gprs_charge"},
		{"sms_charge", "p2p_sms_mo_charge"},
		{"gift_flux", "gift_flux_value"},
	} {
		f.AddColumn(F1Baseline, c.name, colMap(billing, c.col), 0)
	}

	// Recharge events.
	rech := tbl.Recharges
	rInWin := inWindow(rech, win, daysPerMonth)
	f.AddColumn(F1Baseline, "recharge_cnt", countBy(rech, rInWin), 0)

	// Demographics (window's last month snapshot).
	for _, c := range []string{
		"age", "gender", "pspt_type", "is_shanghai", "town_id", "sale_id",
		"product_id", "product_price", "product_knd", "credit_value", "innet_dura",
	} {
		f.AddColumn(F1Baseline, c, colMap(cust, c), 0)
	}

	// Complaints and activity spread.
	f.AddColumn(F1Baseline, "complaint_cnt", countBy(tbl.Complaints, inWindow(tbl.Complaints, win, daysPerMonth)), 0)
	f.AddColumn(F1Baseline, "active_call_days", distinctBy(calls, inWin, "day"), 0)
	f.AddColumn(F1Baseline, "gprs_all_flux", sumBy(tbl.Web, inWindow(tbl.Web, win, daysPerMonth), "flux"), 0)

	// Within-window usage-trend features: the classic "declining usage"
	// baseline churn signals every BI churn model carries. Halves are split
	// at the window midpoint in absolute days.
	mid := (win.FromAbs + win.ToAbs) / 2
	absOf := func(t *table.Table) func(int) float64 {
		ms := t.MustCol("month").Ints
		ds := t.MustCol("day").Ints
		return func(i int) float64 { return float64(AbsDay(int(ms[i]), int(ds[i]), daysPerMonth)) }
	}
	callAbs := absOf(calls)
	firstHalfDur := sumBy(calls, and(inWin, ok, func(i int) bool { return callAbs(i) <= float64(mid) }), "dur")
	secondHalfDur := sumBy(calls, and(inWin, ok, func(i int) bool { return callAbs(i) > float64(mid) }), "dur")
	decline := make(map[int64]float64, len(firstHalfDur))
	for id, fh := range firstHalfDur {
		decline[id] = secondHalfDur[id] / (fh + 60)
	}
	for id, sh := range secondHalfDur {
		if _, seen := firstHalfDur[id]; !seen {
			decline[id] = sh / 60
		}
	}
	f.AddColumn(F1Baseline, "call_dur_decline", decline, 0)

	webAbs := absOf(tbl.Web)
	webWin := inWindow(tbl.Web, win, daysPerMonth)
	fhFlux := sumBy(tbl.Web, func(i int) bool { return webWin(i) && webAbs(i) <= float64(mid) }, "flux")
	shFlux := sumBy(tbl.Web, func(i int) bool { return webWin(i) && webAbs(i) > float64(mid) }, "flux")
	fluxDecline := make(map[int64]float64, len(fhFlux))
	for id, fh := range fhFlux {
		fluxDecline[id] = shFlux[id] / (fh + 5)
	}
	for id, sh := range shFlux {
		if _, seen := fhFlux[id]; !seen {
			fluxDecline[id] = sh / 5
		}
	}
	f.AddColumn(F1Baseline, "flux_decline", fluxDecline, 0)

	// Last day with any voice or data activity, relative to window start.
	lastCall := maxAbsDay(calls, inWin, callAbs)
	lastWeb := maxAbsDay(tbl.Web, webWin, webAbs)
	lastActive := make(map[int64]float64, len(lastCall))
	for id, v := range lastCall {
		lastActive[id] = v - float64(win.FromAbs) + 1
	}
	for id, v := range lastWeb {
		rel := v - float64(win.FromAbs) + 1
		if rel > lastActive[id] {
			lastActive[id] = rel
		}
	}
	f.AddColumn(F1Baseline, "last_active_day", lastActive, 0)

	// Last recharge day relative to window start (0 = none in window).
	rechAbs := absOf(rech)
	lastRecharge := maxAbsDay(rech, rInWin, rechAbs)
	lastRechargeRel := make(map[int64]float64, len(lastRecharge))
	for id, v := range lastRecharge {
		lastRechargeRel[id] = v - float64(win.FromAbs) + 1
	}
	f.AddColumn(F1Baseline, "last_recharge_day", lastRechargeRel, 0)
}

// maxAbsDay returns each customer's maximum absolute event day.
func maxAbsDay(t *table.Table, pred func(int) bool, abs func(int) float64) map[int64]float64 {
	imsi := t.MustCol("imsi").Ints
	out := make(map[int64]float64)
	n := t.NumRows()
	for i := 0; i < n; i++ {
		if !pred(i) {
			continue
		}
		if v := abs(i); v > out[imsi[i]] {
			out[imsi[i]] = v
		}
	}
	return out
}

func addF2(f *Frame, tbl Tables, win Window, daysPerMonth int) {
	calls := tbl.Calls
	inWin := inWindow(calls, win, daysPerMonth)
	success := calls.MustCol("success").Ints
	dropped := calls.MustCol("dropped").Ints
	svc := calls.MustCol("svc").Ints

	// Exclude synthetic service-line rows from quality KPIs.
	real := func(i int) bool { return inWin(i) && svc[i] == 0 }
	okPred := func(i int) bool { return real(i) && success[i] == 1 }

	attempts := countBy(calls, real)
	successes := countBy(calls, okPred)
	drops := countBy(calls, func(i int) bool { return real(i) && dropped[i] == 1 })

	f.AddColumn(F2CS, "call_success_rate", ratio(successes, attempts, 1), 1)
	f.AddColumn(F2CS, "e2e_conn_delay", meanBy(calls, okPred, "conn_delay"), 0)
	f.AddColumn(F2CS, "call_drop_rate", ratio(drops, successes, 0), 0)
	f.AddColumn(F2CS, "uplink_mos", meanBy(calls, okPred, "mos_ul"), 0)
	f.AddColumn(F2CS, "voice_quality", meanBy(calls, okPred, "mos_dl"), 0)
	f.AddColumn(F2CS, "ip_mos", meanBy(calls, okPred, "mos_ip"), 0)
	f.AddColumn(F2CS, "oneway_audio_cnt", sumByInt(calls, real, "oneway"), 0)
	f.AddColumn(F2CS, "noise_cnt", sumByInt(calls, real, "noise"), 0)
	f.AddColumn(F2CS, "echo_cnt", sumByInt(calls, real, "echo"), 0)
}

// sumByInt sums an Int64 column per customer.
func sumByInt(t *table.Table, pred func(int) bool, col string) map[int64]float64 {
	return sumBy(t, pred, col)
}

func addF3(f *Frame, tbl Tables, win Window, daysPerMonth int) {
	web := tbl.Web
	inWin := inWindow(web, win, daysPerMonth)

	pageReq := sumBy(web, inWin, "page_req")
	pageSucc := sumBy(web, inWin, "page_succ")
	browseSucc := sumBy(web, inWin, "browse_succ")
	tcpOK := sumBy(web, inWin, "tcp_ok")
	tcpAtt := sumBy(web, inWin, "tcp_att")
	emailCnt := sumBy(web, inWin, "email_cnt")
	emailOK := sumBy(web, inWin, "email_ok")

	f.AddColumn(F3PS, "page_response_success_rate", ratio(pageSucc, pageReq, 1), 1)
	f.AddColumn(F3PS, "page_response_delay", meanBy(web, inWin, "resp_delay"), 0)
	f.AddColumn(F3PS, "page_browsing_success_rate", ratio(browseSucc, pageSucc, 1), 1)
	f.AddColumn(F3PS, "page_browsing_delay", meanBy(web, inWin, "browse_delay"), 0)
	f.AddColumn(F3PS, "page_download_throughput", meanBy(web, inWin, "dl_tp"), 0)
	f.AddColumn(F3PS, "upload_throughput", meanBy(web, inWin, "ul_tp"), 0)
	f.AddColumn(F3PS, "ps_flux", sumBy(web, inWin, "flux"), 0)
	f.AddColumn(F3PS, "tcp_conn_rate", ratio(tcpOK, tcpAtt, 1), 1)
	f.AddColumn(F3PS, "tcp_rtt", meanBy(web, inWin, "tcp_rtt"), 0)
	f.AddColumn(F3PS, "streaming_filesize", sumBy(web, inWin, "stream_size"), 0)
	f.AddColumn(F3PS, "streaming_dw_packets", sumBy(web, inWin, "stream_pkts"), 0)
	f.AddColumn(F3PS, "email_cnt", emailCnt, 0)
	f.AddColumn(F3PS, "email_success_rate", ratio(emailOK, emailCnt, 1), 1)
	f.AddColumn(F3PS, "ps_active_days", distinctBy(web, inWin, "day"), 0)
	f.AddColumn(F3PS, "page_cnt", pageReq, 0)
	f.AddColumn(F3PS, "page_size_mean", meanBy(web, inWin, "page_size"), 0)

	addTopLocations(f, tbl, win, daysPerMonth)
}

// addTopLocations adds the top-5 most frequent stay locations (lat/lon
// pairs) from MR data — 10 F3 features per the paper (minus one slot used
// by page_size_mean above, keeping the group at 25 columns).
func addTopLocations(f *Frame, tbl Tables, win Window, daysPerMonth int) {
	loc := tbl.Locations
	inWin := inWindow(loc, win, daysPerMonth)
	imsi := loc.MustCol("imsi").Ints
	cellCol := loc.MustCol("cell").Ints
	latCol := loc.MustCol("lat").Floats
	lonCol := loc.MustCol("lon").Floats

	type cellStat struct {
		count    int
		lat, lon float64
	}
	perCustomer := make(map[int64]map[int64]*cellStat)
	n := loc.NumRows()
	for i := 0; i < n; i++ {
		if !inWin(i) {
			continue
		}
		id := imsi[i]
		cells := perCustomer[id]
		if cells == nil {
			cells = make(map[int64]*cellStat)
			perCustomer[id] = cells
		}
		cs := cells[cellCol[i]]
		if cs == nil {
			cs = &cellStat{lat: latCol[i], lon: lonCol[i]}
			cells[cellCol[i]] = cs
		}
		cs.count++
	}

	const topN = 4 // 4 locations x 2 coords = 8 columns; +visit spread = 9
	lats := make([]map[int64]float64, topN)
	lons := make([]map[int64]float64, topN)
	for k := range lats {
		lats[k] = make(map[int64]float64)
		lons[k] = make(map[int64]float64)
	}
	distinctCells := make(map[int64]float64)
	for id, cells := range perCustomer {
		type kv struct {
			cell int64
			st   *cellStat
		}
		ranked := make([]kv, 0, len(cells))
		for c, st := range cells {
			ranked = append(ranked, kv{c, st})
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].st.count != ranked[b].st.count {
				return ranked[a].st.count > ranked[b].st.count
			}
			return ranked[a].cell < ranked[b].cell
		})
		for k := 0; k < topN && k < len(ranked); k++ {
			lats[k][id] = ranked[k].st.lat
			lons[k][id] = ranked[k].st.lon
		}
		distinctCells[id] = float64(len(cells))
	}
	for k := 0; k < topN; k++ {
		f.AddColumn(F3PS, fmt.Sprintf("loc_top%d_lat", k+1), lats[k], 0)
		f.AddColumn(F3PS, fmt.Sprintf("loc_top%d_lon", k+1), lons[k], 0)
	}
	f.AddColumn(F3PS, "loc_distinct_cells", distinctCells, 0)
}

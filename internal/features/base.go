package features

import (
	"fmt"
	"sort"

	"telcochurn/internal/parallel"
	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// Tables bundles the raw tables covering one observation window. Event
// tables (calls, messages, recharges, complaints, web, search, locations)
// may span several months; snapshot tables (billing, customers) are monthly.
type Tables struct {
	Calls      *table.Table
	Messages   *table.Table
	Recharges  *table.Table
	Billing    *table.Table
	Customers  *table.Table
	Complaints *table.Table
	Web        *table.Table
	Search     *table.Table
	Locations  *table.Table
}

// Window is an inclusive range of absolute days. Absolute day 1 is day 1 of
// month 1; month m day d is (m-1)*daysPerMonth + d. A window shorter or
// shifted relative to month boundaries implements the Velocity experiment's
// sliding update (Table 5).
type Window struct {
	FromAbs, ToAbs int
}

// AbsDay converts (month, day) to an absolute day.
func AbsDay(month, day, daysPerMonth int) int {
	return (month-1)*daysPerMonth + day
}

// MonthWindow is the whole-month window for month m.
func MonthWindow(month, daysPerMonth int) Window {
	return Window{FromAbs: AbsDay(month, 1, daysPerMonth), ToAbs: AbsDay(month, daysPerMonth, daysPerMonth)}
}

// LastMonth returns the month containing the window's final day.
func (w Window) LastMonth(daysPerMonth int) int {
	return (w.ToAbs-1)/daysPerMonth + 1
}

// Months returns every month the window overlaps, ascending.
func (w Window) Months(daysPerMonth int) []int {
	first := (w.FromAbs-1)/daysPerMonth + 1
	last := w.LastMonth(daysPerMonth)
	months := make([]int, 0, last-first+1)
	for m := first; m <= last; m++ {
		months = append(months, m)
	}
	return months
}

// LoadTables reads every raw table overlapping the window from the
// warehouse, failing on the first unavailable table. For assembly that
// survives missing feeds, see LoadTablesPartial.
func LoadTables(wh *store.Warehouse, win Window, daysPerMonth int) (Tables, error) {
	return LoadTablesFrom(wh, win, daysPerMonth)
}

// LoadTablesFrom is LoadTables over any TableReader (a raw warehouse, or a
// retry/fault-injection wrapper around one).
func LoadTablesFrom(r TableReader, win Window, daysPerMonth int) (Tables, error) {
	months := win.Months(daysPerMonth)
	var t Tables
	read := func(name string) (*table.Table, error) { return r.ReadMonths(name, months) }
	var err error
	if t.Calls, err = read(synth.TableCalls); err != nil {
		return t, fmt.Errorf("features: load calls: %w", err)
	}
	if t.Messages, err = read(synth.TableMessages); err != nil {
		return t, fmt.Errorf("features: load messages: %w", err)
	}
	if t.Recharges, err = read(synth.TableRecharges); err != nil {
		return t, fmt.Errorf("features: load recharges: %w", err)
	}
	if t.Billing, err = read(synth.TableBilling); err != nil {
		return t, fmt.Errorf("features: load billing: %w", err)
	}
	if t.Customers, err = read(synth.TableCustomers); err != nil {
		return t, fmt.Errorf("features: load customers: %w", err)
	}
	if t.Complaints, err = read(synth.TableComplaints); err != nil {
		return t, fmt.Errorf("features: load complaints: %w", err)
	}
	if t.Web, err = read(synth.TableWeb); err != nil {
		return t, fmt.Errorf("features: load web: %w", err)
	}
	if t.Search, err = read(synth.TableSearch); err != nil {
		return t, fmt.Errorf("features: load search: %w", err)
	}
	if t.Locations, err = read(synth.TableLocations); err != nil {
		return t, fmt.Errorf("features: load locations: %w", err)
	}
	return t, nil
}

// FromMonthData builds Tables directly from in-memory simulator output
// (concatenating the given months), bypassing the warehouse. A single month
// shares the simulator's tables; multiple months are concatenated into fresh
// tables so the simulator output is never mutated.
func FromMonthData(months []*synth.MonthData) (Tables, error) {
	var t Tables
	if len(months) == 0 {
		return t, nil
	}
	if len(months) == 1 {
		md := months[0]
		return Tables{
			Calls: md.Calls, Messages: md.Messages, Recharges: md.Recharges,
			Billing: md.Billing, Customers: md.Customers, Complaints: md.Complaints,
			Web: md.Web, Search: md.Search, Locations: md.Locations,
		}, nil
	}
	first := months[0]
	t = Tables{
		Calls:      table.NewTable(first.Calls.Schema),
		Messages:   table.NewTable(first.Messages.Schema),
		Recharges:  table.NewTable(first.Recharges.Schema),
		Billing:    table.NewTable(first.Billing.Schema),
		Customers:  table.NewTable(first.Customers.Schema),
		Complaints: table.NewTable(first.Complaints.Schema),
		Web:        table.NewTable(first.Web.Schema),
		Search:     table.NewTable(first.Search.Schema),
		Locations:  table.NewTable(first.Locations.Schema),
	}
	for _, md := range months {
		pairs := []struct {
			dst *table.Table
			src *table.Table
		}{
			{t.Calls, md.Calls}, {t.Messages, md.Messages}, {t.Recharges, md.Recharges},
			{t.Billing, md.Billing}, {t.Customers, md.Customers}, {t.Complaints, md.Complaints},
			{t.Web, md.Web}, {t.Search, md.Search}, {t.Locations, md.Locations},
		}
		for _, p := range pairs {
			if err := p.dst.AppendTable(p.src); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// inWindow returns a row predicate filtering an event table (with month and
// day columns) to the window.
func inWindow(t *table.Table, win Window, daysPerMonth int) func(int) bool {
	months := t.MustCol("month").Ints
	days := t.MustCol("day").Ints
	return func(i int) bool {
		abs := AbsDay(int(months[i]), int(days[i]), daysPerMonth)
		return abs >= win.FromAbs && abs <= win.ToAbs
	}
}

// SnapshotMonth returns the month whose end-of-month snapshot tables
// (billing, demographics) a window may use: the month containing ToAbs if
// the window reaches that month's last day, otherwise the month before.
// Monthly snapshots are produced by BSS at month end (Section 5.4: "some
// big tables ... are summarized automatically by BSS monthly"), so a window
// ending mid-month must not see the in-progress month's summary.
func (w Window) SnapshotMonth(daysPerMonth int) int {
	m := w.LastMonth(daysPerMonth)
	if w.ToAbs == AbsDay(m, daysPerMonth, daysPerMonth) {
		return m
	}
	return m - 1
}

// snapshotMonth filters a monthly snapshot table to the window's snapshot
// month.
func snapshotMonth(t *table.Table, win Window, daysPerMonth int) *table.Table {
	m := int64(win.SnapshotMonth(daysPerMonth))
	months := t.MustCol("month").Ints
	return t.Filter(func(i int) bool { return months[i] == m })
}

// colMap converts a (key, value) pair of columns into a map.
func colMap(t *table.Table, valueCol string) map[int64]float64 {
	keys := t.MustCol("imsi").Ints
	col := t.MustCol(valueCol)
	out := make(map[int64]float64, len(keys))
	for i, k := range keys {
		out[k] = col.Float(i)
	}
	return out
}

// sumBy sums valueCol per customer over the rows passing pred, via the
// engine's fused filter+group-by (the paper's Spark SQL aggregation queries
// with predicate pushdown): no filtered copy of t is materialized.
func sumBy(t *table.Table, pred func(int) bool, valueCol string) map[int64]float64 {
	g, err := table.GroupByWhere(t, "imsi", pred, table.Agg{Col: valueCol, Func: table.Sum, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: sumBy(%s): %v", valueCol, err))
	}
	return colMap(g, "v")
}

func countBy(t *table.Table, pred func(int) bool) map[int64]float64 {
	g, err := table.GroupByWhere(t, "imsi", pred, table.Agg{Func: table.Count, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: countBy: %v", err))
	}
	return colMap(g, "v")
}

func meanBy(t *table.Table, pred func(int) bool, valueCol string) map[int64]float64 {
	g, err := table.GroupByWhere(t, "imsi", pred, table.Agg{Col: valueCol, Func: table.Mean, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: meanBy(%s): %v", valueCol, err))
	}
	return colMap(g, "v")
}

func distinctBy(t *table.Table, pred func(int) bool, col string) map[int64]float64 {
	g, err := table.GroupByWhere(t, "imsi", pred, table.Agg{Col: col, Func: table.CountDistinct, As: "v"})
	if err != nil {
		panic(fmt.Sprintf("features: distinctBy(%s): %v", col, err))
	}
	return colMap(g, "v")
}

// ratio computes num[id]/den[id] per customer present in den, with def when
// the denominator is missing or zero.
func ratio(num, den map[int64]float64, def float64) map[int64]float64 {
	out := make(map[int64]float64, len(den))
	for id, d := range den {
		if d == 0 {
			out[id] = def
			continue
		}
		out[id] = num[id] / d
	}
	return out
}

func scale(m map[int64]float64, k float64) map[int64]float64 {
	out := make(map[int64]float64, len(m))
	for id, v := range m {
		out[id] = v * k
	}
	return out
}

// column is one computed wide-table column awaiting placement in a frame.
type column struct {
	group  Group
	name   string
	values map[int64]float64
	def    float64
}

// colJob computes one or more columns; jobs share no mutable state, so they
// are the unit of parallelism for the wide-table build (the role of the
// paper's per-aggregation Spark SQL queries).
type colJob func() []column

// oneCol wraps a single-column computation as a job.
func oneCol(g Group, name string, def float64, compute func() map[int64]float64) colJob {
	return func() []column {
		return []column{{group: g, name: name, values: compute(), def: def}}
	}
}

// runJobs evaluates the jobs across workers and appends every resulting
// column to the frame in job order. Column layout and values are therefore
// identical for any worker count — parallelism only reorders the compute,
// never the merge.
func runJobs(f *Frame, workers int, jobs []colJob) {
	results := make([][]column, len(jobs))
	parallel.ForGrain(workers, len(jobs), 1, func(i int) { results[i] = jobs[i]() })
	for _, cols := range results {
		for _, c := range cols {
			f.AddColumn(c.group, c.name, c.values, c.def)
		}
	}
}

// BaseFeatures builds the F1-F3 columns sequentially; see BuildBaseFeatures.
func BaseFeatures(tbl Tables, win Window, daysPerMonth int) (*Frame, error) {
	return BuildBaseFeatures(tbl, win, daysPerMonth, 1)
}

// BuildBaseFeatures builds the F1 (baseline BSS), F2 (CS KPI/KQI) and F3 (PS
// KPI/KQI + location) columns of the wide table for the given window, fanning
// the independent per-column aggregations across `workers` goroutines
// (0 = GOMAXPROCS). The customer universe is the window's last-month
// demographic snapshot. The frame is bit-identical for any worker count.
func BuildBaseFeatures(tbl Tables, win Window, daysPerMonth, workers int) (*Frame, error) {
	cust := snapshotMonth(tbl.Customers, win, daysPerMonth)
	if cust.NumRows() == 0 {
		return nil, fmt.Errorf("features: no customer snapshot for month %d", win.LastMonth(daysPerMonth))
	}
	frame := NewFrame(cust.MustCol("imsi").Ints)
	jobs := f1Jobs(tbl, cust, win, daysPerMonth)
	jobs = append(jobs, f2Jobs(tbl, win, daysPerMonth)...)
	jobs = append(jobs, f3Jobs(tbl, win, daysPerMonth)...)
	runJobs(frame, workers, jobs)
	return frame, nil
}

func f1Jobs(tbl Tables, cust *table.Table, win Window, daysPerMonth int) []colJob {
	calls := tbl.Calls
	inWin := inWindow(calls, win, daysPerMonth)
	kind := calls.MustCol("kind").Ints
	mo := calls.MustCol("mo").Ints
	peerOp := calls.MustCol("peer_op").Ints
	success := calls.MustCol("success").Ints
	busy := calls.MustCol("busy").Ints
	fest := calls.MustCol("fest").Ints
	free := calls.MustCol("free").Ints
	gift := calls.MustCol("gift").Ints
	svc := calls.MustCol("svc").Ints
	manual := calls.MustCol("manual").Ints

	and := func(preds ...func(int) bool) func(int) bool {
		return func(i int) bool {
			for _, p := range preds {
				if !p(i) {
					return false
				}
			}
			return true
		}
	}
	isMO := func(i int) bool { return mo[i] == 1 }
	isMT := func(i int) bool { return mo[i] == 0 }
	ok := func(i int) bool { return success[i] == 1 }
	kindIs := func(k int64) func(int) bool { return func(i int) bool { return kind[i] == k } }
	localAny := func(i int) bool { return kind[i] == synth.CallLocalInner || kind[i] == synth.CallLocalOuter }
	notSvc := func(i int) bool { return svc[i] == 0 }

	var jobs []colJob
	sumJob := func(name string, pred func(int) bool) {
		jobs = append(jobs, oneCol(F1Baseline, name, 0, func() map[int64]float64 {
			return sumBy(calls, pred, "dur")
		}))
	}
	cntJob := func(name string, pred func(int) bool) {
		jobs = append(jobs, oneCol(F1Baseline, name, 0, func() map[int64]float64 {
			return countBy(calls, pred)
		}))
	}

	// Call durations (seconds).
	sumJob("localbase_inner_call_dur", and(inWin, isMO, ok, kindIs(synth.CallLocalInner), notSvc))
	sumJob("localbase_outer_call_dur", and(inWin, isMO, ok, kindIs(synth.CallLocalOuter)))
	sumJob("ld_call_dur", and(inWin, isMO, ok, kindIs(synth.CallLongDist)))
	sumJob("roam_call_dur", and(inWin, isMO, ok, kindIs(synth.CallRoam)))
	sumJob("localbase_called_dur", and(inWin, isMT, ok, localAny))
	sumJob("ld_called_dur", and(inWin, isMT, ok, kindIs(synth.CallLongDist)))
	sumJob("roam_called_dur", and(inWin, isMT, ok, kindIs(synth.CallRoam)))
	sumJob("cm_dur", and(inWin, ok, func(i int) bool { return peerOp[i] == synth.OpChinaMobile }))
	sumJob("ct_dur", and(inWin, ok, func(i int) bool { return peerOp[i] == synth.OpChinaTelecom }))
	sumJob("busy_call_dur", and(inWin, isMO, ok, func(i int) bool { return busy[i] == 1 }))
	sumJob("fest_call_dur", and(inWin, isMO, ok, func(i int) bool { return fest[i] == 1 }))
	sumJob("free_call_dur", and(inWin, ok, func(i int) bool { return free[i] == 1 }))
	sumJob("gift_voice_call_dur", and(inWin, ok, func(i int) bool { return gift[i] == 1 }))
	sumJob("voice_dur", and(inWin, ok))
	sumJob("caller_dur", and(inWin, isMO, ok))

	// Call counts.
	cntJob("all_call_cnt", inWin)
	cntJob("voice_cnt", and(inWin, ok))
	cntJob("local_base_call_cnt", and(inWin, isMO, localAny, notSvc))
	cntJob("ld_call_cnt", and(inWin, isMO, kindIs(synth.CallLongDist)))
	cntJob("roam_call_cnt", and(inWin, isMO, kindIs(synth.CallRoam)))
	cntJob("caller_cnt", and(inWin, isMO))
	cntJob("call_10010_cnt", and(inWin, func(i int) bool { return svc[i] == 1 }))
	cntJob("call_10010_manual_cnt", and(inWin, func(i int) bool { return manual[i] == 1 }))

	// Call minutes (duration/60 views the BI system reports separately).
	minuteJob := func(name string, pred func(int) bool) {
		jobs = append(jobs, oneCol(F1Baseline, name, 0, func() map[int64]float64 {
			return scale(sumBy(calls, pred, "dur"), 1.0/60)
		}))
	}
	minuteJob("local_call_minutes", and(inWin, isMO, ok, localAny))
	minuteJob("toll_call_minutes", and(inWin, isMO, ok, kindIs(synth.CallLongDist)))
	minuteJob("roam_call_minutes", and(inWin, isMO, ok, kindIs(synth.CallRoam)))
	minuteJob("voice_call_minutes", and(inWin, ok))

	// Messages.
	msgs := tbl.Messages
	mInWin := inWindow(msgs, win, daysPerMonth)
	mKind := msgs.MustCol("kind").Ints
	mMO := msgs.MustCol("mo").Ints
	mMMS := msgs.MustCol("mms").Ints
	mOp := msgs.MustCol("peer_op").Ints
	mRoamInt := msgs.MustCol("roam_int").Ints
	mGift := msgs.MustCol("gift").Ints

	mIsMO := func(i int) bool { return mMO[i] == 1 }
	mIsMT := func(i int) bool { return mMO[i] == 0 }
	isSMS := func(i int) bool { return mMMS[i] == 0 }
	isMMS := func(i int) bool { return mMMS[i] == 1 }
	p2p := func(i int) bool { return mKind[i] == synth.MsgP2P }
	opIs := func(op int64) func(int) bool { return func(i int) bool { return mOp[i] == op } }

	msgJob := func(name string, pred func(int) bool) {
		jobs = append(jobs, oneCol(F1Baseline, name, 0, func() map[int64]float64 {
			return countBy(msgs, pred)
		}))
	}
	msgJob("sms_p2p_inner_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, opIs(synth.OpSelf)))
	msgJob("sms_p2p_other_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, func(i int) bool { return mOp[i] != synth.OpSelf }))
	msgJob("sms_p2p_cm_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, opIs(synth.OpChinaMobile)))
	msgJob("sms_p2p_ct_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, opIs(synth.OpChinaTelecom)))
	msgJob("sms_info_mo_cnt", and(mInWin, func(i int) bool { return mKind[i] == synth.MsgInfo }))
	msgJob("sms_p2p_roam_int_mo_cnt", and(mInWin, p2p, mIsMO, isSMS, func(i int) bool { return mRoamInt[i] == 1 }))
	msgJob("sms_bill_cnt", and(mInWin, func(i int) bool { return mKind[i] == synth.MsgBilling }))
	msgJob("sms_p2p_mt_cnt", and(mInWin, p2p, mIsMT, isSMS))
	msgJob("serve_sms_count", and(mInWin, func(i int) bool { return mKind[i] == synth.MsgService }))
	msgJob("mms_cnt", and(mInWin, isMMS))
	msgJob("mms_p2p_inner_mo_cnt", and(mInWin, p2p, mIsMO, isMMS, opIs(synth.OpSelf)))
	msgJob("mms_p2p_other_mo_cnt", and(mInWin, p2p, mIsMO, isMMS, func(i int) bool { return mOp[i] != synth.OpSelf }))
	msgJob("mms_p2p_mt_cnt", and(mInWin, p2p, mIsMT, isMMS))
	msgJob("p2p_sms_mo_cnt", and(mInWin, p2p, mIsMO, isSMS))
	msgJob("gift_sms_mo_cnt", and(mInWin, mIsMO, func(i int) bool { return mGift[i] == 1 }))

	jobs = append(jobs, oneCol(F1Baseline, "distinct_serve_count", 0, func() map[int64]float64 {
		return distinctBy(msgs, and(mInWin, func(i int) bool { return mKind[i] == synth.MsgService }), "peer")
	}))

	// Billing snapshot (window's last month) — one cheap job for all columns.
	jobs = append(jobs, func() []column {
		billing := snapshotMonth(tbl.Billing, win, daysPerMonth)
		var cols []column
		for _, c := range []struct{ col, name string }{
			{"balance", "balance"},
			{"total_charge", "total_charge"},
			{"recharge_value", "recharge_value"},
			{"balance_rate", "balance_rate"},
			{"gprs_flux", "gprs_flux"},
			{"gprs_charge", "gprs_charge"},
			{"sms_charge", "p2p_sms_mo_charge"},
			{"gift_flux", "gift_flux_value"},
		} {
			cols = append(cols, column{group: F1Baseline, name: c.name, values: colMap(billing, c.col)})
		}
		return cols
	})

	// Recharge events.
	rech := tbl.Recharges
	rInWin := inWindow(rech, win, daysPerMonth)
	jobs = append(jobs, oneCol(F1Baseline, "recharge_cnt", 0, func() map[int64]float64 {
		return countBy(rech, rInWin)
	}))

	// Demographics (window's last month snapshot).
	jobs = append(jobs, func() []column {
		var cols []column
		for _, c := range []string{
			"age", "gender", "pspt_type", "is_shanghai", "town_id", "sale_id",
			"product_id", "product_price", "product_knd", "credit_value", "innet_dura",
		} {
			cols = append(cols, column{group: F1Baseline, name: c, values: colMap(cust, c)})
		}
		return cols
	})

	// Complaints and activity spread.
	jobs = append(jobs, oneCol(F1Baseline, "complaint_cnt", 0, func() map[int64]float64 {
		return countBy(tbl.Complaints, inWindow(tbl.Complaints, win, daysPerMonth))
	}))
	jobs = append(jobs, oneCol(F1Baseline, "active_call_days", 0, func() map[int64]float64 {
		return distinctBy(calls, inWin, "day")
	}))
	jobs = append(jobs, oneCol(F1Baseline, "gprs_all_flux", 0, func() map[int64]float64 {
		return sumBy(tbl.Web, inWindow(tbl.Web, win, daysPerMonth), "flux")
	}))

	// Within-window usage-trend features: the classic "declining usage"
	// baseline churn signals every BI churn model carries. Halves are split
	// at the window midpoint in absolute days.
	mid := (win.FromAbs + win.ToAbs) / 2
	absOf := func(t *table.Table) func(int) float64 {
		ms := t.MustCol("month").Ints
		ds := t.MustCol("day").Ints
		return func(i int) float64 { return float64(AbsDay(int(ms[i]), int(ds[i]), daysPerMonth)) }
	}

	jobs = append(jobs, oneCol(F1Baseline, "call_dur_decline", 0, func() map[int64]float64 {
		callAbs := absOf(calls)
		firstHalfDur := sumBy(calls, and(inWin, ok, func(i int) bool { return callAbs(i) <= float64(mid) }), "dur")
		secondHalfDur := sumBy(calls, and(inWin, ok, func(i int) bool { return callAbs(i) > float64(mid) }), "dur")
		decline := make(map[int64]float64, len(firstHalfDur))
		for id, fh := range firstHalfDur {
			decline[id] = secondHalfDur[id] / (fh + 60)
		}
		for id, sh := range secondHalfDur {
			if _, seen := firstHalfDur[id]; !seen {
				decline[id] = sh / 60
			}
		}
		return decline
	}))

	jobs = append(jobs, oneCol(F1Baseline, "flux_decline", 0, func() map[int64]float64 {
		webAbs := absOf(tbl.Web)
		webWin := inWindow(tbl.Web, win, daysPerMonth)
		fhFlux := sumBy(tbl.Web, func(i int) bool { return webWin(i) && webAbs(i) <= float64(mid) }, "flux")
		shFlux := sumBy(tbl.Web, func(i int) bool { return webWin(i) && webAbs(i) > float64(mid) }, "flux")
		fluxDecline := make(map[int64]float64, len(fhFlux))
		for id, fh := range fhFlux {
			fluxDecline[id] = shFlux[id] / (fh + 5)
		}
		for id, sh := range shFlux {
			if _, seen := fhFlux[id]; !seen {
				fluxDecline[id] = sh / 5
			}
		}
		return fluxDecline
	}))

	// Last day with any voice or data activity, relative to window start.
	jobs = append(jobs, oneCol(F1Baseline, "last_active_day", 0, func() map[int64]float64 {
		webWin := inWindow(tbl.Web, win, daysPerMonth)
		lastCall := maxAbsDay(calls, inWin, absOf(calls))
		lastWeb := maxAbsDay(tbl.Web, webWin, absOf(tbl.Web))
		lastActive := make(map[int64]float64, len(lastCall))
		for id, v := range lastCall {
			lastActive[id] = v - float64(win.FromAbs) + 1
		}
		for id, v := range lastWeb {
			rel := v - float64(win.FromAbs) + 1
			if rel > lastActive[id] {
				lastActive[id] = rel
			}
		}
		return lastActive
	}))

	// Last recharge day relative to window start (0 = none in window).
	jobs = append(jobs, oneCol(F1Baseline, "last_recharge_day", 0, func() map[int64]float64 {
		lastRecharge := maxAbsDay(rech, rInWin, absOf(rech))
		lastRechargeRel := make(map[int64]float64, len(lastRecharge))
		for id, v := range lastRecharge {
			lastRechargeRel[id] = v - float64(win.FromAbs) + 1
		}
		return lastRechargeRel
	}))

	return jobs
}

// maxAbsDay returns each customer's maximum absolute event day.
func maxAbsDay(t *table.Table, pred func(int) bool, abs func(int) float64) map[int64]float64 {
	imsi := t.MustCol("imsi").Ints
	out := make(map[int64]float64)
	n := t.NumRows()
	for i := 0; i < n; i++ {
		if !pred(i) {
			continue
		}
		if v := abs(i); v > out[imsi[i]] {
			out[imsi[i]] = v
		}
	}
	return out
}

func f2Jobs(tbl Tables, win Window, daysPerMonth int) []colJob {
	calls := tbl.Calls
	inWin := inWindow(calls, win, daysPerMonth)
	success := calls.MustCol("success").Ints
	dropped := calls.MustCol("dropped").Ints
	svc := calls.MustCol("svc").Ints

	// Exclude synthetic service-line rows from quality KPIs.
	real := func(i int) bool { return inWin(i) && svc[i] == 0 }
	okPred := func(i int) bool { return real(i) && success[i] == 1 }

	return []colJob{
		oneCol(F2CS, "call_success_rate", 1, func() map[int64]float64 {
			return ratio(countBy(calls, okPred), countBy(calls, real), 1)
		}),
		oneCol(F2CS, "e2e_conn_delay", 0, func() map[int64]float64 {
			return meanBy(calls, okPred, "conn_delay")
		}),
		oneCol(F2CS, "call_drop_rate", 0, func() map[int64]float64 {
			drops := countBy(calls, func(i int) bool { return real(i) && dropped[i] == 1 })
			return ratio(drops, countBy(calls, okPred), 0)
		}),
		oneCol(F2CS, "uplink_mos", 0, func() map[int64]float64 { return meanBy(calls, okPred, "mos_ul") }),
		oneCol(F2CS, "voice_quality", 0, func() map[int64]float64 { return meanBy(calls, okPred, "mos_dl") }),
		oneCol(F2CS, "ip_mos", 0, func() map[int64]float64 { return meanBy(calls, okPred, "mos_ip") }),
		oneCol(F2CS, "oneway_audio_cnt", 0, func() map[int64]float64 { return sumByInt(calls, real, "oneway") }),
		oneCol(F2CS, "noise_cnt", 0, func() map[int64]float64 { return sumByInt(calls, real, "noise") }),
		oneCol(F2CS, "echo_cnt", 0, func() map[int64]float64 { return sumByInt(calls, real, "echo") }),
	}
}

// sumByInt sums an Int64 column per customer.
func sumByInt(t *table.Table, pred func(int) bool, col string) map[int64]float64 {
	return sumBy(t, pred, col)
}

func f3Jobs(tbl Tables, win Window, daysPerMonth int) []colJob {
	web := tbl.Web
	inWin := inWindow(web, win, daysPerMonth)

	jobs := []colJob{
		oneCol(F3PS, "page_response_success_rate", 1, func() map[int64]float64 {
			return ratio(sumBy(web, inWin, "page_succ"), sumBy(web, inWin, "page_req"), 1)
		}),
		oneCol(F3PS, "page_response_delay", 0, func() map[int64]float64 { return meanBy(web, inWin, "resp_delay") }),
		oneCol(F3PS, "page_browsing_success_rate", 1, func() map[int64]float64 {
			return ratio(sumBy(web, inWin, "browse_succ"), sumBy(web, inWin, "page_succ"), 1)
		}),
		oneCol(F3PS, "page_browsing_delay", 0, func() map[int64]float64 { return meanBy(web, inWin, "browse_delay") }),
		oneCol(F3PS, "page_download_throughput", 0, func() map[int64]float64 { return meanBy(web, inWin, "dl_tp") }),
		oneCol(F3PS, "upload_throughput", 0, func() map[int64]float64 { return meanBy(web, inWin, "ul_tp") }),
		oneCol(F3PS, "ps_flux", 0, func() map[int64]float64 { return sumBy(web, inWin, "flux") }),
		oneCol(F3PS, "tcp_conn_rate", 1, func() map[int64]float64 {
			return ratio(sumBy(web, inWin, "tcp_ok"), sumBy(web, inWin, "tcp_att"), 1)
		}),
		oneCol(F3PS, "tcp_rtt", 0, func() map[int64]float64 { return meanBy(web, inWin, "tcp_rtt") }),
		oneCol(F3PS, "streaming_filesize", 0, func() map[int64]float64 { return sumBy(web, inWin, "stream_size") }),
		oneCol(F3PS, "streaming_dw_packets", 0, func() map[int64]float64 { return sumBy(web, inWin, "stream_pkts") }),
		oneCol(F3PS, "email_cnt", 0, func() map[int64]float64 { return sumBy(web, inWin, "email_cnt") }),
		oneCol(F3PS, "email_success_rate", 1, func() map[int64]float64 {
			return ratio(sumBy(web, inWin, "email_ok"), sumBy(web, inWin, "email_cnt"), 1)
		}),
		oneCol(F3PS, "ps_active_days", 0, func() map[int64]float64 { return distinctBy(web, inWin, "day") }),
		oneCol(F3PS, "page_cnt", 0, func() map[int64]float64 { return sumBy(web, inWin, "page_req") }),
		oneCol(F3PS, "page_size_mean", 0, func() map[int64]float64 { return meanBy(web, inWin, "page_size") }),
	}
	jobs = append(jobs, topLocationJob(tbl, win, daysPerMonth))
	return jobs
}

// topLocationJob computes the top-5 most frequent stay locations (lat/lon
// pairs) from MR data — 10 F3 features per the paper (minus one slot used
// by page_size_mean above, keeping the group at 25 columns). One scan feeds
// all nine columns, so it is a single multi-column job.
func topLocationJob(tbl Tables, win Window, daysPerMonth int) colJob {
	return func() []column {
		loc := tbl.Locations
		inWin := inWindow(loc, win, daysPerMonth)
		imsi := loc.MustCol("imsi").Ints
		cellCol := loc.MustCol("cell").Ints
		latCol := loc.MustCol("lat").Floats
		lonCol := loc.MustCol("lon").Floats

		type cellStat struct {
			count    int
			lat, lon float64
		}
		perCustomer := make(map[int64]map[int64]*cellStat)
		n := loc.NumRows()
		for i := 0; i < n; i++ {
			if !inWin(i) {
				continue
			}
			id := imsi[i]
			cells := perCustomer[id]
			if cells == nil {
				cells = make(map[int64]*cellStat)
				perCustomer[id] = cells
			}
			cs := cells[cellCol[i]]
			if cs == nil {
				cs = &cellStat{lat: latCol[i], lon: lonCol[i]}
				cells[cellCol[i]] = cs
			}
			cs.count++
		}

		const topN = 4 // 4 locations x 2 coords = 8 columns; +visit spread = 9
		lats := make([]map[int64]float64, topN)
		lons := make([]map[int64]float64, topN)
		for k := range lats {
			lats[k] = make(map[int64]float64)
			lons[k] = make(map[int64]float64)
		}
		distinctCells := make(map[int64]float64)
		for id, cells := range perCustomer {
			type kv struct {
				cell int64
				st   *cellStat
			}
			ranked := make([]kv, 0, len(cells))
			for c, st := range cells {
				ranked = append(ranked, kv{c, st})
			}
			sort.Slice(ranked, func(a, b int) bool {
				if ranked[a].st.count != ranked[b].st.count {
					return ranked[a].st.count > ranked[b].st.count
				}
				return ranked[a].cell < ranked[b].cell
			})
			for k := 0; k < topN && k < len(ranked); k++ {
				lats[k][id] = ranked[k].st.lat
				lons[k][id] = ranked[k].st.lon
			}
			distinctCells[id] = float64(len(cells))
		}
		var cols []column
		for k := 0; k < topN; k++ {
			cols = append(cols, column{group: F3PS, name: fmt.Sprintf("loc_top%d_lat", k+1), values: lats[k]})
			cols = append(cols, column{group: F3PS, name: fmt.Sprintf("loc_top%d_lon", k+1), values: lons[k]})
		}
		cols = append(cols, column{group: F3PS, name: "loc_distinct_cells", values: distinctCells})
		return cols
	}
}

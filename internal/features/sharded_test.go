package features

import (
	"math"
	"testing"

	"telcochurn/internal/table"
	"telcochurn/internal/topic"
)

// shardTables hash-partitions every raw table by customer key, standing in
// for per-shard warehouse reads.
func shardTables(t *testing.T, tbl Tables, shards int) []Tables {
	t.Helper()
	split := func(src *table.Table) []*table.Table {
		parts, err := table.PartitionByHash(src, "imsi", shards)
		if err != nil {
			t.Fatal(err)
		}
		return parts
	}
	calls := split(tbl.Calls)
	msgs := split(tbl.Messages)
	rech := split(tbl.Recharges)
	bill := split(tbl.Billing)
	cust := split(tbl.Customers)
	comp := split(tbl.Complaints)
	web := split(tbl.Web)
	search := split(tbl.Search)
	loc := split(tbl.Locations)
	out := make([]Tables, shards)
	for s := 0; s < shards; s++ {
		out[s] = Tables{
			Calls: calls[s], Messages: msgs[s], Recharges: rech[s],
			Billing: bill[s], Customers: cust[s], Complaints: comp[s],
			Web: web[s], Search: search[s], Locations: loc[s],
		}
	}
	return out
}

func framesBitIdentical(t *testing.T, a, b *Frame, context string) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumColumns() != b.NumColumns() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", context, a.NumRows(), a.NumColumns(), b.NumRows(), b.NumColumns())
	}
	an, bn := a.Names(), b.Names()
	ag, bg := a.Groups(), b.Groups()
	for j := range an {
		if an[j] != bn[j] || ag[j] != bg[j] {
			t.Fatalf("%s: column %d is %s/%s vs %s/%s", context, j, an[j], ag[j], bn[j], bg[j])
		}
	}
	for i, id := range a.IDs() {
		if b.IDs()[i] != id {
			t.Fatalf("%s: row %d id %d vs %d", context, i, id, b.IDs()[i])
		}
		ra, _ := a.Row(id)
		rb, _ := b.Row(id)
		for j := range ra {
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				t.Fatalf("%s: id %d col %q: %v vs %v (not bit-identical)",
					context, id, an[j], ra[j], rb[j])
			}
		}
	}
}

func shardedSpec(t *testing.T, tbl Tables, shards, workers int, win Window, days int, groups []Group) ShardedBuildSpec {
	t.Helper()
	parts := shardTables(t, tbl, shards)
	return ShardedBuildSpec{
		Shards:        shards,
		Load:          func(s int) (Tables, error) { return parts[s], nil },
		LoadCustomers: func(s int) (*table.Table, error) { return parts[s].Customers, nil },
		Win:           win,
		DaysPerMonth:  days,
		Workers:       workers,
		Groups:        groups,
	}
}

func TestBuildShardedFrameInvariantAcrossShardsAndWorkers(t *testing.T) {
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	win := MonthWindow(2, cfg.DaysPerMonth)
	in := GraphFeatureInput{
		PrevChurners: ChurnersOf(months[1].Truth),
		StableSample: StableOf(months[1].Truth, 10),
	}
	groups := []Group{F1Baseline, F2CS, F3PS, F4CallGraph, F5MessageGraph, F6CooccurrenceGraph}
	var ref *Frame
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 8} {
			spec := shardedSpec(t, tbl, shards, workers, win, cfg.DaysPerMonth, groups)
			spec.GraphIn = in
			got, stats, err := BuildShardedFrame(spec)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if stats.Shards != shards || stats.RawRows == 0 {
				t.Fatalf("shards=%d: stats = %+v", shards, stats)
			}
			if ref == nil {
				ref = got
				continue
			}
			framesBitIdentical(t, ref, got, "shards/workers variation")
		}
	}
	if n := ref.NumColumns(); n != 70+9+25+6 {
		t.Fatalf("sharded frame has %d columns, want 110", n)
	}
}

func TestBuildShardedFrameBaseMatchesInMemoryBitwise(t *testing.T) {
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	win := MonthWindow(2, cfg.DaysPerMonth)

	// F1-F3 and the topic groups are per-customer aggregates, so the sharded
	// build must reproduce the in-memory build bit for bit.
	comp, err := FitTopicFeaturizer(tbl.Complaints, win, cfg.DaysPerMonth, F7ComplaintTopics, "complaint", topic.Config{K: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	search, err := FitTopicFeaturizer(tbl.Search, win, cfg.DaysPerMonth, F8SearchTopics, "search", topic.Config{K: 5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildBaseFeatures(tbl, win, cfg.DaysPerMonth, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := base.SelectGroups(F1Baseline, F2CS, F3PS)
	comp.Apply(want, tbl.Complaints, win, cfg.DaysPerMonth)
	search.Apply(want, tbl.Search, win, cfg.DaysPerMonth)

	spec := shardedSpec(t, tbl, 4, 2, win, cfg.DaysPerMonth,
		[]Group{F1Baseline, F2CS, F3PS, F7ComplaintTopics, F8SearchTopics})
	spec.Complaints = comp
	spec.Search = search
	got, _, err := BuildShardedFrame(spec)
	if err != nil {
		t.Fatal(err)
	}
	framesBitIdentical(t, want, got, "sharded vs in-memory")
}

func TestBuildShardedFrameGraphColumnsPopulated(t *testing.T) {
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	win := MonthWindow(2, cfg.DaysPerMonth)
	spec := shardedSpec(t, tbl, 4, 2, win, cfg.DaysPerMonth, []Group{F4CallGraph})
	spec.GraphIn = GraphFeatureInput{
		PrevChurners: ChurnersOf(months[1].Truth),
		StableSample: StableOf(months[1].Truth, 10),
	}
	got, _, err := BuildShardedFrame(spec)
	if err != nil {
		t.Fatal(err)
	}
	names := got.Names()
	if len(names) != 2 || names[0] != "pagerank_voice" || names[1] != "labelpropagation_voice" {
		t.Fatalf("graph-only frame columns = %v", names)
	}
	var nonZero int
	for _, id := range got.IDs() {
		row, _ := got.Row(id)
		if row[0] != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("every pagerank value is zero — graph never built")
	}
}

func TestBuildShardedFrameRejectsF9AndMissingFeaturizer(t *testing.T) {
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	win := MonthWindow(2, cfg.DaysPerMonth)
	spec := shardedSpec(t, tbl, 2, 1, win, cfg.DaysPerMonth, []Group{F1Baseline, F9SecondOrder})
	if _, _, err := BuildShardedFrame(spec); err == nil {
		t.Fatal("F9 accepted in sharded build")
	}
	spec = shardedSpec(t, tbl, 2, 1, win, cfg.DaysPerMonth, []Group{F7ComplaintTopics})
	if _, _, err := BuildShardedFrame(spec); err == nil {
		t.Fatal("F7 without a fitted featurizer accepted")
	}
}

package features

import (
	"sort"

	"telcochurn/internal/graph"
	"telcochurn/internal/parallel"
)

// Canonical graph accumulation for the sharded wide-table build.
//
// The in-memory builders (BuildCallGraph etc.) insert edges in raw row
// order, which fixes the adjacency fold order of PageRank and label
// propagation — fine for one table, but row order depends on how rows were
// partitioned, so a shard-by-shard build could never match itself across
// shard counts. The accumulator instead collects shard-local partials whose
// merge is order-independent, then materializes each graph canonically:
// vertices and edges inserted in sorted-id order, every edge weight reduced
// in a fixed direction order. The result is bit-identical for any shard
// count and any worker count (including a single shard), at the price of
// diverging bitwise from the row-order in-memory builders — the per-column
// divergence is the adjacency fold order, not the graph itself.
//
// Why the partials merge exactly:
//
//   - Call/message partials are per-DIRECTED-edge sums keyed (caller,
//     callee). A caller's rows live in the caller's shard in original row
//     order, so each directed partial is computed from the same values in
//     the same order whatever the shard count — the merged map is identical,
//     and the undirected weight folds the two directions in fixed
//     (min-id, max-id) order.
//   - Co-occurrence cube membership keeps the cubeCap smallest customer ids
//     per cube (a semilattice: the min-k of a union is independent of merge
//     order), replacing the in-memory builder's first-k-in-row-order cap.
const cooccurrenceCubeCap = 30

type dirEdge struct{ from, to int64 }

type cubeKey struct{ abs, slot, cell int64 }

type graphPartials struct {
	call  map[dirEdge]float64
	msg   map[dirEdge]float64
	cubes map[cubeKey][]int64 // sorted ascending, <= cooccurrenceCubeCap ids
}

// GraphAccumulator merges shard-local graph partials into the canonical
// F4-F6 graphs. Feed each shard's tables (any order, one goroutine per shard
// is safe — partials are per-shard), then Finalize once.
type GraphAccumulator struct {
	wantCall, wantMsg, wantCooc bool
	parts                       []graphPartials
}

// NewGraphAccumulator sizes an accumulator for the given shard count,
// collecting only the graphs backing the requested groups.
func NewGraphAccumulator(shards int, groups []Group) *GraphAccumulator {
	a := &GraphAccumulator{parts: make([]graphPartials, shards)}
	for _, g := range groups {
		switch g {
		case F4CallGraph:
			a.wantCall = true
		case F5MessageGraph:
			a.wantMsg = true
		case F6CooccurrenceGraph:
			a.wantCooc = true
		}
	}
	for i := range a.parts {
		if a.wantCall {
			a.parts[i].call = map[dirEdge]float64{}
		}
		if a.wantMsg {
			a.parts[i].msg = map[dirEdge]float64{}
		}
		if a.wantCooc {
			a.parts[i].cubes = map[cubeKey][]int64{}
		}
	}
	return a
}

// Feed accumulates one shard's slice of the raw tables. Row filters mirror
// the in-memory builders exactly; isCustomer must be the same universe-or-
// previous-churner predicate AddGraphFeatures uses, over the FULL merged
// universe — which is why the sharded build resolves the universe before
// loading event tables.
func (a *GraphAccumulator) Feed(shard int, tbl Tables, win Window, daysPerMonth int, isCustomer func(int64) bool) {
	p := &a.parts[shard]
	if a.wantCall {
		calls := tbl.Calls
		inWin := inWindow(calls, win, daysPerMonth)
		imsi := calls.MustCol("imsi").Ints
		peer := calls.MustCol("peer").Ints
		dur := calls.MustCol("dur").Floats
		success := calls.MustCol("success").Ints
		svc := calls.MustCol("svc").Ints
		for i := 0; i < calls.NumRows(); i++ {
			if !inWin(i) || success[i] != 1 || svc[i] == 1 || dur[i] <= 0 {
				continue
			}
			if !isCustomer(peer[i]) {
				continue
			}
			p.call[dirEdge{imsi[i], peer[i]}] += dur[i]
		}
	}
	if a.wantMsg {
		msgs := tbl.Messages
		inWin := inWindow(msgs, win, daysPerMonth)
		imsi := msgs.MustCol("imsi").Ints
		peer := msgs.MustCol("peer").Ints
		kind := msgs.MustCol("kind").Ints
		for i := 0; i < msgs.NumRows(); i++ {
			if !inWin(i) || kind[i] != 0 {
				continue
			}
			if !isCustomer(peer[i]) {
				continue
			}
			p.msg[dirEdge{imsi[i], peer[i]}]++
		}
	}
	if a.wantCooc {
		loc := tbl.Locations
		inWin := inWindow(loc, win, daysPerMonth)
		imsi := loc.MustCol("imsi").Ints
		day := loc.MustCol("day").Ints
		month := loc.MustCol("month").Ints
		slot := loc.MustCol("slot").Ints
		cell := loc.MustCol("cell").Ints
		for i := 0; i < loc.NumRows(); i++ {
			if !inWin(i) || !isCustomer(imsi[i]) {
				continue
			}
			c := cubeKey{abs: month[i]*64 + day[i], slot: slot[i], cell: cell[i]}
			p.cubes[c] = insertCapped(p.cubes[c], imsi[i], cooccurrenceCubeCap)
		}
	}
}

// insertCapped inserts id into the sorted set m, keeping only the cap
// smallest members. The min-cap of a union is merge-order independent, which
// is what makes cube membership shard-count invariant.
func insertCapped(m []int64, id int64, cap int) []int64 {
	i := sort.Search(len(m), func(j int) bool { return m[j] >= id })
	if i < len(m) && m[i] == id {
		return m
	}
	if len(m) >= cap {
		if i >= cap {
			return m
		}
		copy(m[i+1:], m[i:len(m)-1])
		m[i] = id
		return m
	}
	m = append(m, 0)
	copy(m[i+1:], m[i:len(m)-1])
	m[i] = id
	return m
}

// mergeCapped merges two sorted capped sets, keeping the cap smallest.
func mergeCapped(a, b []int64, cap int) []int64 {
	if len(a) == 0 {
		return append([]int64(nil), b...)
	}
	out := make([]int64, 0, min(len(a)+len(b), cap))
	i, j := 0, 0
	for len(out) < cap && (i < len(a) || j < len(b)) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Finalize materializes the requested graphs (nil for groups not collected).
// Vertices appear in ascending-id order of their first sorted edge and edges
// insert in sorted (min-id, max-id) order, so downstream PageRank and label
// propagation fold adjacencies in a canonical order.
func (a *GraphAccumulator) Finalize() (call, msg, cooc *graph.Graph) {
	if a.wantCall {
		call = a.finalizeDirected(func(p *graphPartials) map[dirEdge]float64 { return p.call })
	}
	if a.wantMsg {
		msg = a.finalizeDirected(func(p *graphPartials) map[dirEdge]float64 { return p.msg })
	}
	if a.wantCooc {
		cooc = a.finalizeCooccurrence()
	}
	return call, msg, cooc
}

func (a *GraphAccumulator) finalizeDirected(sel func(*graphPartials) map[dirEdge]float64) *graph.Graph {
	merged := map[dirEdge]float64{}
	for i := range a.parts {
		for e, w := range sel(&a.parts[i]) {
			merged[e] += w
		}
	}
	pairs := make([]dirEdge, 0, len(merged))
	seen := map[dirEdge]bool{}
	for e := range merged {
		u := dirEdge{min(e.from, e.to), max(e.from, e.to)}
		if !seen[u] {
			seen[u] = true
			pairs = append(pairs, u)
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].from != pairs[y].from {
			return pairs[x].from < pairs[y].from
		}
		return pairs[x].to < pairs[y].to
	})
	g := graph.New()
	for _, u := range pairs {
		w := merged[dirEdge{u.from, u.to}]
		if u.from != u.to {
			w += merged[dirEdge{u.to, u.from}]
		}
		g.AddEdge(u.from, u.to, w)
	}
	return g
}

func (a *GraphAccumulator) finalizeCooccurrence() *graph.Graph {
	merged := map[cubeKey][]int64{}
	for i := range a.parts {
		for c, ids := range a.parts[i].cubes {
			merged[c] = mergeCapped(merged[c], ids, cooccurrenceCubeCap)
		}
	}
	weights := map[dirEdge]float64{}
	for _, m := range merged {
		// Members are sorted, so every pair is already (min-id, max-id);
		// integer counts make the accumulation order irrelevant.
		for x := 0; x < len(m); x++ {
			for y := x + 1; y < len(m); y++ {
				weights[dirEdge{m[x], m[y]}]++
			}
		}
	}
	pairs := make([]dirEdge, 0, len(weights))
	for e := range weights {
		pairs = append(pairs, e)
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].from != pairs[y].from {
			return pairs[x].from < pairs[y].from
		}
		return pairs[x].to < pairs[y].to
	})
	g := graph.New()
	for _, e := range pairs {
		g.AddEdge(e.from, e.to, weights[e])
	}
	return g
}

// scoreGraphsInto computes the graph feature columns for prebuilt canonical
// graphs (nil = group not requested) and adds the requested columns to f in
// canonical F4, F5, F6 order with the same names and imputation defaults as
// AddGraphFeatures.
func scoreGraphsInto(f *Frame, graphs [3]*graph.Graph, in GraphFeatureInput, workers int) {
	suffixes := [3]string{"voice", "message", "cooccurrence"}
	groups := [3]Group{F4CallGraph, F5MessageGraph, F6CooccurrenceGraph}
	seeds := seedMap(in)
	type graphCols struct {
		pr, lp map[int64]float64
	}
	var results [3]graphCols
	parallel.ForGrain(workers, len(graphs), 1, func(i int) {
		if graphs[i] == nil {
			return
		}
		pr, lp := scoreGraph(graphs[i], seeds, workers)
		results[i] = graphCols{pr: pr, lp: lp}
	})
	for i := range graphs {
		if graphs[i] == nil {
			continue
		}
		f.AddColumn(groups[i], "pagerank_"+suffixes[i], results[i].pr, 0)
		f.AddColumn(groups[i], "labelpropagation_"+suffixes[i], results[i].lp, 0.5)
	}
}

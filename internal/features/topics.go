package features

import (
	"fmt"
	"sort"
	"strings"

	"telcochurn/internal/table"
	"telcochurn/internal/topic"
)

// TopicFeaturizer holds a trained LDA model for one text source (complaints
// or search queries). Fit it on the training window's corpus; Apply folds in
// any month's documents against the fixed topic-word distributions, so test
// months never influence the topics.
type TopicFeaturizer struct {
	model  *topic.Model
	group  Group
	prefix string
}

// aggregateTexts concatenates each customer's texts in the window into one
// document (Section 4.1.3: "each customer can be represented as a document
// containing a bag of words").
func aggregateTexts(t *table.Table, win Window, daysPerMonth int) map[int64]string {
	inWin := inWindow(t, win, daysPerMonth)
	imsi := t.MustCol("imsi").Ints
	text := t.MustCol("text").Strings
	var sb map[int64]*strings.Builder = make(map[int64]*strings.Builder)
	n := t.NumRows()
	for i := 0; i < n; i++ {
		if !inWin(i) {
			continue
		}
		b := sb[imsi[i]]
		if b == nil {
			b = &strings.Builder{}
			sb[imsi[i]] = b
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(text[i])
	}
	out := make(map[int64]string, len(sb))
	for id, b := range sb {
		out[id] = b.String()
	}
	return out
}

// FitTopicFeaturizer trains LDA (K topics via belief propagation) on the
// window's customer documents from the given text table.
func FitTopicFeaturizer(t *table.Table, win Window, daysPerMonth int, group Group, prefix string, cfg topic.Config) (*TopicFeaturizer, error) {
	docs := aggregateTexts(t, win, daysPerMonth)
	corpus := topic.NewCorpus()
	// Deterministic document order.
	ids := sortedKeys(docs)
	for _, id := range ids {
		corpus.AddDoc(id, docs[id])
	}
	if corpus.NumDocs() == 0 {
		return nil, fmt.Errorf("features: no %s documents in window [%d,%d]", prefix, win.FromAbs, win.ToAbs)
	}
	model, err := topic.Fit(corpus, cfg)
	if err != nil {
		return nil, err
	}
	return &TopicFeaturizer{model: model, group: group, prefix: prefix}, nil
}

// Apply adds K topic-proportion columns for the window's documents to the
// frame. Customers with no text get the uniform distribution.
func (tf *TopicFeaturizer) Apply(f *Frame, t *table.Table, win Window, daysPerMonth int) {
	docs := aggregateTexts(t, win, daysPerMonth)
	k := tf.model.K()
	cols := make([]map[int64]float64, k)
	for i := range cols {
		cols[i] = make(map[int64]float64, len(docs))
	}
	for _, id := range sortedKeys(docs) {
		theta := tf.model.FoldIn(docs[id], 0)
		for i, v := range theta {
			cols[i][id] = v
		}
	}
	uniform := 1.0 / float64(k)
	for i := range cols {
		f.AddColumn(tf.group, fmt.Sprintf("%s_topic_%d", tf.prefix, i), cols[i], uniform)
	}
}

// K returns the topic count.
func (tf *TopicFeaturizer) K() int { return tf.model.K() }

func sortedKeys(m map[int64]string) []int64 {
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

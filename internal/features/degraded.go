package features

import (
	"errors"
	"fmt"
	"strings"

	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// Degraded-mode table loading. The paper's platform treats the BSS feeds
// (F1) as always available while the OSS/xDR feeds backing F2-F8 can lag or
// drop (§5.4: CS/PS probes and DPI are separate collection systems). This
// file lets the wide-table build survive missing raw tables: an unavailable
// table is replaced by an empty table with its canonical schema, so every
// configured column still materializes — customers simply take the column's
// imputation default — and the caller receives a Degradation bitmask naming
// the feature groups built from imputed data. The customer snapshot is the
// floor: without it there is no row universe and loading fails with
// ErrUniverseUnavailable.

// ErrUniverseUnavailable is returned when the customer snapshot table — the
// row universe of the wide table — cannot be loaded. There is no degraded
// mode below it: with no customer list there is nothing to score.
var ErrUniverseUnavailable = errors.New("features: customer universe unavailable")

// TableReader reads one raw table's partitions for the given months,
// concatenated in month order. *store.Warehouse implements it; retry and
// fault-injection layers wrap it.
type TableReader interface {
	ReadMonths(name string, months []int) (*table.Table, error)
}

// Degradation is a bitmask of feature groups that were assembled from
// imputed data because a backing raw table was unavailable. Zero means a
// fully healthy build. Bit i-1 corresponds to group Fi.
type Degradation uint16

// Add marks a group degraded.
func (d *Degradation) Add(g Group) { *d |= 1 << (g - 1) }

// Has reports whether the group was degraded.
func (d Degradation) Has(g Group) bool { return d&(1<<(g-1)) != 0 }

// Empty reports a fully healthy build.
func (d Degradation) Empty() bool { return d == 0 }

// Groups returns the degraded groups in canonical order.
func (d Degradation) Groups() []Group {
	var out []Group
	for _, g := range AllGroups() {
		if d.Has(g) {
			out = append(out, g)
		}
	}
	return out
}

// String renders the mask as "none" or a comma-joined group list ("F3,F6").
func (d Degradation) String() string {
	if d.Empty() {
		return "none"
	}
	var parts []string
	for _, g := range d.Groups() {
		parts = append(parts, g.String())
	}
	return strings.Join(parts, ",")
}

// tableGroups maps each raw table to the feature groups it backs. A missing
// table degrades exactly these groups (intersected with the configured
// ones). The customer snapshot is absent: it is required, not degradable.
var tableGroups = map[string][]Group{
	synth.TableCalls:      {F1Baseline, F2CS, F4CallGraph},
	synth.TableMessages:   {F1Baseline, F5MessageGraph},
	synth.TableRecharges:  {F1Baseline},
	synth.TableBilling:    {F1Baseline},
	synth.TableComplaints: {F1Baseline, F7ComplaintTopics},
	synth.TableWeb:        {F1Baseline, F3PS},
	synth.TableSearch:     {F8SearchTopics},
	synth.TableLocations:  {F3PS, F6CooccurrenceGraph},
}

// rawSchemas maps raw table names to their canonical schemas, for
// synthesizing empty stand-ins when a table is unavailable.
var rawSchemas = map[string]*table.Schema{
	synth.TableCalls:      synth.CallsSchema,
	synth.TableMessages:   synth.MessagesSchema,
	synth.TableRecharges:  synth.RechargesSchema,
	synth.TableBilling:    synth.BillingSchema,
	synth.TableCustomers:  synth.CustomersSchema,
	synth.TableComplaints: synth.ComplaintsSchema,
	synth.TableWeb:        synth.WebSchema,
	synth.TableSearch:     synth.SearchSchema,
	synth.TableLocations:  synth.LocationsSchema,
}

// RawSchema returns the canonical schema of the named raw table, or false
// for unknown names. The streaming ingest path uses it to assemble typed
// event rows from wire records.
func RawSchema(name string) (*table.Schema, bool) {
	s, ok := rawSchemas[name]
	return s, ok
}

// EmptyRawTable returns a zero-row table with the canonical schema of the
// named raw table — the degraded-mode stand-in for an unavailable feed.
// Aggregations over it produce no per-customer values, so every column it
// backs lands at that column's imputation default.
func EmptyRawTable(name string) (*table.Table, error) {
	s, ok := rawSchemas[name]
	if !ok {
		return nil, fmt.Errorf("features: unknown raw table %q", name)
	}
	return table.NewTable(s), nil
}

// DegradationOf maps missing raw tables onto the feature groups they
// degrade, restricted to the configured groups (a missing search log does
// not degrade an F1-only pipeline).
func DegradationOf(missing []string, configured []Group) Degradation {
	cfg := make(map[Group]bool, len(configured))
	for _, g := range configured {
		cfg[g] = true
	}
	var d Degradation
	for _, name := range missing {
		for _, g := range tableGroups[name] {
			if cfg[g] {
				d.Add(g)
			}
		}
	}
	return d
}

// LoadTablesPartial reads every raw table overlapping the window, replacing
// unavailable tables (after whatever retries the reader performs) with
// empty schema-correct stand-ins and reporting their names in canonical
// load order. Only the customer snapshot is required; its failure aborts
// with ErrUniverseUnavailable. With no tables missing the result is
// identical to LoadTablesFrom.
func LoadTablesPartial(r TableReader, win Window, daysPerMonth int) (Tables, []string, error) {
	months := win.Months(daysPerMonth)
	var missing []string
	load := func(name string, dst **table.Table) error {
		t, err := r.ReadMonths(name, months)
		if err == nil {
			*dst = t
			return nil
		}
		if name == synth.TableCustomers {
			return fmt.Errorf("%w: %v", ErrUniverseUnavailable, err)
		}
		empty, eerr := EmptyRawTable(name)
		if eerr != nil {
			return eerr
		}
		*dst = empty
		missing = append(missing, name)
		return nil
	}
	var t Tables
	for _, p := range []struct {
		name string
		dst  **table.Table
	}{
		{synth.TableCalls, &t.Calls},
		{synth.TableMessages, &t.Messages},
		{synth.TableRecharges, &t.Recharges},
		{synth.TableBilling, &t.Billing},
		{synth.TableCustomers, &t.Customers},
		{synth.TableComplaints, &t.Complaints},
		{synth.TableWeb, &t.Web},
		{synth.TableSearch, &t.Search},
		{synth.TableLocations, &t.Locations},
	} {
		if err := load(p.name, p.dst); err != nil {
			return t, missing, err
		}
	}
	return t, missing, nil
}

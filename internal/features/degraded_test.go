package features

import (
	"errors"
	"fmt"
	"testing"

	"telcochurn/internal/store"
	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// genWarehouse writes a small synthetic world into a fresh warehouse.
func genWarehouse(t *testing.T) (*store.Warehouse, synth.Config) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Customers = 120
	cfg.Months = 2
	cfg.Seed = 7
	wh, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.GenerateToWarehouse(cfg, wh); err != nil {
		t.Fatal(err)
	}
	return wh, cfg
}

// failReader fails ReadMonths for a chosen set of tables.
type failReader struct {
	inner TableReader
	fail  map[string]bool
}

func (r *failReader) ReadMonths(name string, months []int) (*table.Table, error) {
	if r.fail[name] {
		return nil, fmt.Errorf("injected outage for %s", name)
	}
	return r.inner.ReadMonths(name, months)
}

func TestLoadTablesPartialHealthyMatchesStrict(t *testing.T) {
	wh, cfg := genWarehouse(t)
	win := MonthWindow(1, cfg.DaysPerMonth)

	strict, err := LoadTables(wh, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	partial, missing, err := LoadTablesPartial(wh, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("healthy warehouse reported missing tables: %v", missing)
	}
	for _, pair := range []struct {
		name string
		a, b *table.Table
	}{
		{"calls", strict.Calls, partial.Calls},
		{"web", strict.Web, partial.Web},
		{"customers", strict.Customers, partial.Customers},
	} {
		if pair.a.NumRows() != pair.b.NumRows() {
			t.Errorf("%s: partial rows %d != strict rows %d", pair.name, pair.b.NumRows(), pair.a.NumRows())
		}
	}
}

func TestLoadTablesPartialSubstitutesEmpties(t *testing.T) {
	wh, cfg := genWarehouse(t)
	win := MonthWindow(1, cfg.DaysPerMonth)
	r := &failReader{inner: wh, fail: map[string]bool{
		synth.TableWeb:       true,
		synth.TableSearch:    true,
		synth.TableLocations: true,
	}}
	tbl, missing, err := LoadTablesPartial(r, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 3 {
		t.Fatalf("missing = %v, want web, search, locations", missing)
	}
	if tbl.Web.NumRows() != 0 || !tbl.Web.Schema.Equal(synth.WebSchema) {
		t.Error("web stand-in is not an empty schema-correct table")
	}
	if tbl.Locations.NumRows() != 0 || !tbl.Locations.Schema.Equal(synth.LocationsSchema) {
		t.Error("locations stand-in is not an empty schema-correct table")
	}
	if tbl.Calls.NumRows() == 0 {
		t.Error("present table calls came back empty")
	}

	// A degraded build over these tables still produces the full schema.
	frame, err := BaseFeatures(tbl, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := LoadTables(wh, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BaseFeatures(healthy, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	if frame.NumColumns() != want.NumColumns() || frame.NumRows() != want.NumRows() {
		t.Fatalf("degraded frame %dx%d, healthy %dx%d",
			frame.NumRows(), frame.NumColumns(), want.NumRows(), want.NumColumns())
	}
}

func TestLoadTablesPartialCustomerFloor(t *testing.T) {
	wh, cfg := genWarehouse(t)
	win := MonthWindow(1, cfg.DaysPerMonth)
	r := &failReader{inner: wh, fail: map[string]bool{synth.TableCustomers: true}}
	_, _, err := LoadTablesPartial(r, win, cfg.DaysPerMonth)
	if !errors.Is(err, ErrUniverseUnavailable) {
		t.Fatalf("err = %v, want ErrUniverseUnavailable", err)
	}
}

func TestDegradationMask(t *testing.T) {
	var d Degradation
	if !d.Empty() || d.String() != "none" {
		t.Errorf("zero mask: %q", d.String())
	}
	d.Add(F3PS)
	d.Add(F6CooccurrenceGraph)
	if d.Empty() || !d.Has(F3PS) || !d.Has(F6CooccurrenceGraph) || d.Has(F1Baseline) {
		t.Errorf("mask bits wrong: %v", d)
	}
	if d.String() != "F3,F6" {
		t.Errorf("String() = %q, want F3,F6", d.String())
	}
	if got := d.Groups(); len(got) != 2 || got[0] != F3PS || got[1] != F6CooccurrenceGraph {
		t.Errorf("Groups() = %v", got)
	}
}

func TestDegradationOfRespectsConfiguredGroups(t *testing.T) {
	missing := []string{synth.TableWeb, synth.TableLocations, synth.TableSearch}
	// F1-only pipeline: web degrades F1 columns; locations/search do not
	// touch F1.
	d := DegradationOf(missing, []Group{F1Baseline})
	if d.String() != "F1" {
		t.Errorf("F1-only mask = %q, want F1", d)
	}
	// Full pipeline: all backed groups flagged.
	d = DegradationOf(missing, AllGroups())
	for _, g := range []Group{F1Baseline, F3PS, F6CooccurrenceGraph, F8SearchTopics} {
		if !d.Has(g) {
			t.Errorf("full mask missing %v (got %q)", g, d)
		}
	}
	if d.Has(F4CallGraph) || d.Has(F7ComplaintTopics) {
		t.Errorf("mask flags untouched groups: %q", d)
	}
}

func TestEmptyRawTable(t *testing.T) {
	for name := range rawSchemas {
		tb, err := EmptyRawTable(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tb.NumRows() != 0 {
			t.Errorf("%s: %d rows, want 0", name, tb.NumRows())
		}
		if err := tb.Validate(); err != nil {
			t.Errorf("%s: invalid empty table: %v", name, err)
		}
	}
	if _, err := EmptyRawTable("no-such-table"); err == nil {
		t.Error("unknown table name accepted")
	}
}

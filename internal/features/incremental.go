package features

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// Incremental feature maintenance.
//
// Every per-customer feature in this package — the F1–F3 aggregates, the
// F7/F8 topic mixtures, and (at the pipeline layer) the F9 second-order
// products — is a fold over one customer's raw rows in row order:
// table.GroupBy accumulates each group's sums and means across the group's
// rows in the order they appear, distinct counters and maxes are
// order-free, and topic fold-in consumes the customer's texts concatenated
// in row order. Row-order folds decompose over prefixes, so appending a
// customer's new event rows at the end of the serving window's tables and
// re-running the very same builders over just that customer's rows yields
// values Float64bits-identical to a from-scratch rebuild over the merged
// data (where the merge likewise appends events after each partition's
// existing rows — store.EventLog.MergeInto). That identity is what lets a
// streamed event update a served score in milliseconds while remaining
// exactly reproducible by the monthly batch path; the property test in
// incremental_test.go pins it against BuildShardedFrame.
//
// The Maintainer holds the serving window's raw tables in memory, appends
// accepted events to them, and keeps a per-table imsi → row-index posting
// list so a single customer's slice is assembled in O(customer's rows),
// not O(table). Graph groups (F4–F6) are inherently cross-customer and are
// out of scope here: they stay at their snapshot values until an explicit
// refresh rebuilds the frame (see churnd's POST /v1/refresh).

// ErrNotInUniverse reports an event or recompute for a customer absent
// from the serving window's demographic snapshot; such customers have no
// feature row to maintain.
var ErrNotInUniverse = errors.New("features: customer not in serving universe")

// CloneTables deep-copies a Tables bundle. The maintainer appends to its
// tables in place, so callers whose source shares table memory (an
// in-memory simulator month) clone before construction.
func CloneTables(tbl Tables) (Tables, error) {
	clone := func(src *table.Table) (*table.Table, error) {
		if src == nil {
			return nil, nil
		}
		dst := table.NewTable(src.Schema)
		if err := dst.AppendTable(src); err != nil {
			return nil, err
		}
		return dst, nil
	}
	var out Tables
	var err error
	for _, p := range []struct {
		dst **table.Table
		src *table.Table
	}{
		{&out.Calls, tbl.Calls}, {&out.Messages, tbl.Messages}, {&out.Recharges, tbl.Recharges},
		{&out.Billing, tbl.Billing}, {&out.Customers, tbl.Customers}, {&out.Complaints, tbl.Complaints},
		{&out.Web, tbl.Web}, {&out.Search, tbl.Search}, {&out.Locations, tbl.Locations},
	} {
		if *p.dst, err = clone(p.src); err != nil {
			return out, err
		}
	}
	return out, nil
}

// StreamableTables lists the raw tables that accept streamed event rows:
// the append-only event feeds. Monthly snapshot tables (billing,
// demographics) are produced by BSS at month end and are not streamable.
var StreamableTables = []string{
	synth.TableCalls, synth.TableMessages, synth.TableRecharges,
	synth.TableComplaints, synth.TableWeb, synth.TableSearch,
	synth.TableLocations,
}

// Maintainer folds streamed raw events into one serving month's feature
// state. All methods are safe for one writer (Apply) concurrent with
// readers (CustomerFrame) via an internal mutex; the serving layer
// additionally serializes Apply against refresh swaps.
type Maintainer struct {
	mu   sync.Mutex
	tbl  Tables
	win  Window
	days int
	// universe is the serving month's customer snapshot (the frame's id
	// set); events for ids outside it are logged but maintain nothing.
	universe map[int64]struct{}
	// idx posts each table's rows by imsi, in row order — base rows first,
	// appended event rows after, preserving the fold order a from-scratch
	// build over merged data would see. Costs one int per raw row.
	idx     map[string]map[int64][]int
	applied int
}

// NewMaintainer indexes the serving window's tables. The window must be a
// single whole month (the serving shape): merging an event into its month
// partition appends it after that month's rows, which coincides with
// appending at the end of the loaded table only when the window holds
// exactly that one month — the bit-identity argument above needs that.
func NewMaintainer(tbl Tables, win Window, daysPerMonth int) (*Maintainer, error) {
	if months := win.Months(daysPerMonth); len(months) != 1 || win != MonthWindow(months[0], daysPerMonth) {
		return nil, fmt.Errorf("features: maintainer window %+v must be one whole month", win)
	}
	m := &Maintainer{tbl: tbl, win: win, days: daysPerMonth, idx: map[string]map[int64][]int{}}
	snap := snapshotMonth(tbl.Customers, win, daysPerMonth)
	if snap.NumRows() == 0 {
		return nil, ErrUniverseUnavailable
	}
	m.universe = make(map[int64]struct{}, snap.NumRows())
	for _, id := range snap.MustCol("imsi").Ints {
		m.universe[id] = struct{}{}
	}
	for name, t := range m.tables() {
		m.idx[name] = postByIMSI(t)
	}
	return m, nil
}

// tables maps raw table names to the maintainer's mutable copies.
func (m *Maintainer) tables() map[string]*table.Table {
	return map[string]*table.Table{
		synth.TableCalls:      m.tbl.Calls,
		synth.TableMessages:   m.tbl.Messages,
		synth.TableRecharges:  m.tbl.Recharges,
		synth.TableBilling:    m.tbl.Billing,
		synth.TableCustomers:  m.tbl.Customers,
		synth.TableComplaints: m.tbl.Complaints,
		synth.TableWeb:        m.tbl.Web,
		synth.TableSearch:     m.tbl.Search,
		synth.TableLocations:  m.tbl.Locations,
	}
}

func postByIMSI(t *table.Table) map[int64][]int {
	post := map[int64][]int{}
	if t == nil {
		return post
	}
	for i, id := range t.MustCol("imsi").Ints {
		post[id] = append(post[id], i)
	}
	return post
}

// Window returns the maintained serving window.
func (m *Maintainer) Window() Window { return m.win }

// DaysPerMonth returns the configured month length.
func (m *Maintainer) DaysPerMonth() int { return m.days }

// Known reports whether the customer is in the serving universe.
func (m *Maintainer) Known(id int64) bool {
	_, ok := m.universe[id]
	return ok
}

// AnyCustomer returns an arbitrary universe customer — a probe id for
// schema validation at wiring time. The universe is never empty
// (NewMaintainer fails on an empty snapshot).
func (m *Maintainer) AnyCustomer() int64 {
	for id := range m.universe {
		return id
	}
	return 0
}

// UniverseSize returns the number of customers in the serving universe.
func (m *Maintainer) UniverseSize() int { return len(m.universe) }

// Applied returns the number of event rows folded in so far.
func (m *Maintainer) Applied() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applied
}

// Apply appends one table's event rows to the maintained state and returns
// the distinct affected universe customers (ascending) plus the number of
// rows applied. Rows for months outside the serving window are skipped —
// they live in the durable log and surface after the next merge + rebuild
// — as are rows for unknown customers (appended, since a merged rebuild
// would also see them, but affecting no feature row). Only
// StreamableTables are accepted, and the rows must match the table's
// schema exactly.
func (m *Maintainer) Apply(name string, events *table.Table) ([]int64, int, error) {
	streamable := false
	for _, s := range StreamableTables {
		if s == name {
			streamable = true
			break
		}
	}
	if !streamable {
		return nil, 0, fmt.Errorf("features: table %q does not accept streamed events", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	dst := m.tables()[name]
	months := events.MustCol("month").Ints
	servingMonth := int64(m.win.LastMonth(m.days))
	ev := events.Filter(func(i int) bool { return months[i] == servingMonth })
	if ev.NumRows() == 0 {
		return nil, 0, nil
	}
	base := dst.NumRows()
	if err := dst.AppendTable(ev); err != nil {
		return nil, 0, fmt.Errorf("features: apply %s events: %w", name, err)
	}
	post := m.idx[name]
	affected := map[int64]struct{}{}
	for i, id := range ev.MustCol("imsi").Ints {
		post[id] = append(post[id], base+i)
		if _, ok := m.universe[id]; ok {
			affected[id] = struct{}{}
		}
	}
	m.applied += ev.NumRows()
	ids := make([]int64, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, ev.NumRows(), nil
}

// customerTables assembles one customer's slice of every table, rows in
// maintained order. Callers hold m.mu.
func (m *Maintainer) customerTables(id int64) Tables {
	take := func(name string, t *table.Table) *table.Table {
		return t.Take(m.idx[name][id])
	}
	return Tables{
		Calls:      take(synth.TableCalls, m.tbl.Calls),
		Messages:   take(synth.TableMessages, m.tbl.Messages),
		Recharges:  take(synth.TableRecharges, m.tbl.Recharges),
		Billing:    take(synth.TableBilling, m.tbl.Billing),
		Customers:  take(synth.TableCustomers, m.tbl.Customers),
		Complaints: take(synth.TableComplaints, m.tbl.Complaints),
		Web:        take(synth.TableWeb, m.tbl.Web),
		Search:     take(synth.TableSearch, m.tbl.Search),
		Locations:  take(synth.TableLocations, m.tbl.Locations),
	}
}

// CustomerFrame rebuilds one customer's per-customer feature columns from
// the maintained state: the base groups among groups (in canonical order),
// then F7/F8 topic mixtures when requested (their fitted featurizers must
// be supplied). Graph groups and F9 in groups are ignored — the former are
// cross-customer, the latter is applied to the assembled row by the
// pipeline layer. The resulting one-row frame carries exactly the values a
// full rebuild over the merged data would put in this customer's row.
func (m *Maintainer) CustomerFrame(id int64, groups []Group, complaints, search *TopicFeaturizer) (*Frame, error) {
	if _, ok := m.universe[id]; !ok {
		return nil, fmt.Errorf("%w: imsi %d", ErrNotInUniverse, id)
	}
	want := map[Group]bool{}
	for _, g := range groups {
		want[g] = true
	}
	var baseGroups []Group
	for _, g := range []Group{F1Baseline, F2CS, F3PS} {
		if want[g] {
			baseGroups = append(baseGroups, g)
		}
	}
	if want[F7ComplaintTopics] && complaints == nil {
		return nil, fmt.Errorf("features: F7 requested but no fitted complaint featurizer")
	}
	if want[F8SearchTopics] && search == nil {
		return nil, fmt.Errorf("features: F8 requested but no fitted search featurizer")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ct := m.customerTables(id)
	bf, err := BuildBaseFeatures(ct, m.win, m.days, 1)
	if err != nil {
		return nil, fmt.Errorf("features: recompute imsi %d: %w", id, err)
	}
	sel := bf.SelectGroups(baseGroups...)
	if want[F7ComplaintTopics] {
		complaints.Apply(sel, ct.Complaints, m.win, m.days)
	}
	if want[F8SearchTopics] {
		search.Apply(sel, ct.Search, m.win, m.days)
	}
	return sel, nil
}

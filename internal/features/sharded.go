package features

import (
	"fmt"
	"sync/atomic"

	"telcochurn/internal/graph"
	"telcochurn/internal/parallel"
	"telcochurn/internal/table"
)

// ShardedBuildSpec parameterizes an out-of-core wide-table build: the raw
// tables arrive one customer-hash shard at a time through the Load callbacks
// instead of as one in-memory Tables bundle, so peak memory is bounded by
// the largest shard (times the worker count), not the dataset.
type ShardedBuildSpec struct {
	// Shards is the number of hash shards the loaders cover. 1 is valid and
	// produces the same frame as any other count.
	Shards int
	// Load returns the raw tables of one shard restricted to the window's
	// months. Called once per shard.
	Load func(shard int) (Tables, error)
	// LoadCustomers returns one shard's customers table over the window's
	// months. Called once per shard, before Load, to resolve the customer
	// universe up front (graph edges need the full universe predicate).
	LoadCustomers func(shard int) (*table.Table, error)

	Win          Window
	DaysPerMonth int
	// Workers caps how many shards build concurrently (0 = GOMAXPROCS).
	// More workers = more speed and proportionally more peak memory.
	Workers int

	// Groups selects the feature groups to build. F9 is rejected here: the
	// second-order featurizer is a trained model applied to the merged
	// frame, so the pipeline layer applies it after this build returns.
	Groups []Group
	// GraphIn seeds label propagation when a graph group is requested.
	GraphIn GraphFeatureInput
	// Complaints and Search must be fitted featurizers when F7 / F8 are
	// requested (topic models are fitted on a merged corpus, not per shard).
	Complaints *TopicFeaturizer
	Search     *TopicFeaturizer
}

// ShardStats reports what a sharded build consumed.
type ShardStats struct {
	Shards  int
	RawRows int64 // total raw-table rows streamed across all shards
}

// BuildShardedFrame assembles the wide table shard by shard and merges the
// per-shard results into one frame over the full customer universe.
//
// The output is bit-identical for any shard count and any worker count:
// per-customer aggregates (F1-F3, F7, F8) are shard-local because customers
// are hash-partitioned, and the graph groups (F4-F6) merge through
// GraphAccumulator's canonical order-independent reduction. Column order
// matches the in-memory pipeline build: base groups, graph groups, topic
// groups, each in canonical group order.
func BuildShardedFrame(spec ShardedBuildSpec) (*Frame, ShardStats, error) {
	stats := ShardStats{Shards: spec.Shards}
	if spec.Shards < 1 {
		return nil, stats, fmt.Errorf("features: sharded build needs at least 1 shard, got %d", spec.Shards)
	}
	want := map[Group]bool{}
	for _, g := range spec.Groups {
		if g == F9SecondOrder {
			return nil, stats, fmt.Errorf("features: F9 is applied to the merged frame, not built per shard")
		}
		want[g] = true
	}
	var baseGroups []Group
	for _, g := range []Group{F1Baseline, F2CS, F3PS} {
		if want[g] {
			baseGroups = append(baseGroups, g)
		}
	}
	if want[F7ComplaintTopics] && spec.Complaints == nil {
		return nil, stats, fmt.Errorf("features: F7 requested but no fitted complaint featurizer")
	}
	if want[F8SearchTopics] && spec.Search == nil {
		return nil, stats, fmt.Errorf("features: F8 requested but no fitted search featurizer")
	}

	// Pass 1: resolve the customer universe from the per-shard demographic
	// snapshots. Cheap (customers only) and required before any event table
	// is scanned: the graph builders' isCustomer predicate must see the
	// whole universe, not one shard's slice of it.
	shardIDs := make([][]int64, spec.Shards)
	errs := make([]error, spec.Shards)
	parallel.ForGrain(spec.Workers, spec.Shards, 1, func(s int) {
		cust, err := spec.LoadCustomers(s)
		if err != nil {
			errs[s] = fmt.Errorf("features: load customers shard %d: %w", s, err)
			return
		}
		snap := snapshotMonth(cust, spec.Win, spec.DaysPerMonth)
		if snap.NumRows() > 0 {
			shardIDs[s] = append([]int64(nil), snap.MustCol("imsi").Ints...)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	var all []int64
	for _, ids := range shardIDs {
		all = append(all, ids...)
	}
	if len(all) == 0 {
		return nil, stats, fmt.Errorf("features: no customer snapshot for month %d", spec.Win.LastMonth(spec.DaysPerMonth))
	}
	uni := NewFrame(all)
	isCustomer := func(id int64) bool {
		_, ok := uni.index[id]
		return ok || spec.GraphIn.PrevChurners[id]
	}

	// Pass 2: stream each shard's raw tables once, feeding the graph
	// accumulator and building the shard-local per-customer columns. Inner
	// builds run single-threaded when shards provide the parallelism, so
	// worker count scales concurrent shard residency, not thread count².
	wantGraph := want[F4CallGraph] || want[F5MessageGraph] || want[F6CooccurrenceGraph]
	wantPerCustomer := len(baseGroups) > 0 || want[F7ComplaintTopics] || want[F8SearchTopics]
	acc := NewGraphAccumulator(spec.Shards, spec.Groups)
	shardFrames := make([]*Frame, spec.Shards)
	innerWorkers := spec.Workers
	if spec.Shards > 1 {
		innerWorkers = 1
	}
	var rawRows int64
	parallel.ForGrain(spec.Workers, spec.Shards, 1, func(s int) {
		tbl, err := spec.Load(s)
		if err != nil {
			errs[s] = fmt.Errorf("features: load shard %d: %w", s, err)
			return
		}
		for _, t := range []*table.Table{tbl.Calls, tbl.Messages, tbl.Recharges, tbl.Billing,
			tbl.Customers, tbl.Complaints, tbl.Web, tbl.Search, tbl.Locations} {
			atomic.AddInt64(&rawRows, int64(t.NumRows()))
		}
		if wantGraph {
			// Every shard feeds the accumulator, even ones with no snapshot
			// customers: their rows still carry edges to customers elsewhere.
			acc.Feed(s, tbl, spec.Win, spec.DaysPerMonth, isCustomer)
		}
		if !wantPerCustomer || len(shardIDs[s]) == 0 {
			return
		}
		bf, err := BuildBaseFeatures(tbl, spec.Win, spec.DaysPerMonth, innerWorkers)
		if err != nil {
			errs[s] = fmt.Errorf("features: build shard %d: %w", s, err)
			return
		}
		sel := bf.SelectGroups(baseGroups...)
		if want[F7ComplaintTopics] {
			spec.Complaints.Apply(sel, tbl.Complaints, spec.Win, spec.DaysPerMonth)
		}
		if want[F8SearchTopics] {
			spec.Search.Apply(sel, tbl.Search, spec.Win, spec.DaysPerMonth)
		}
		shardFrames[s] = sel
	})
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	stats.RawRows = rawRows

	// Merge. Shard universes are disjoint, so every merged row maps to
	// exactly one (shard, row); columns copy group by group in the canonical
	// order of the in-memory build: [F1 F2 F3] graphs [F7 F8].
	var ref *Frame
	for _, sf := range shardFrames {
		if sf != nil {
			ref = sf
			break
		}
	}
	type rowLoc struct{ shard, row int32 }
	var loc []rowLoc
	if ref != nil {
		loc = make([]rowLoc, uni.NumRows())
		for i := range loc {
			loc[i] = rowLoc{-1, -1}
		}
		for s, sf := range shardFrames {
			if sf == nil {
				continue
			}
			for r, id := range sf.ids {
				i, ok := uni.index[id]
				if !ok {
					continue
				}
				loc[i] = rowLoc{int32(s), int32(r)}
			}
		}
	}
	copyGroups := func(keep ...Group) error {
		if ref == nil {
			return nil
		}
		keepSet := map[Group]bool{}
		for _, g := range keep {
			keepSet[g] = true
		}
		for j, name := range ref.names {
			if !keepSet[ref.group[j]] {
				continue
			}
			dense := make([]float64, uni.NumRows())
			for i := range dense {
				if l := loc[i]; l.shard >= 0 {
					dense[i] = shardFrames[l.shard].x[l.row][j]
				}
			}
			if err := uni.AddDense(ref.group[j], name, dense); err != nil {
				return err
			}
		}
		return nil
	}
	if err := copyGroups(F1Baseline, F2CS, F3PS); err != nil {
		return nil, stats, err
	}
	if wantGraph {
		call, msg, cooc := acc.Finalize()
		scoreGraphsInto(uni, [3]*graph.Graph{call, msg, cooc}, spec.GraphIn, spec.Workers)
	}
	if err := copyGroups(F7ComplaintTopics, F8SearchTopics); err != nil {
		return nil, stats, err
	}
	return uni, stats, nil
}

package features

import (
	"telcochurn/internal/codec"
	"telcochurn/internal/fm"
	"telcochurn/internal/topic"
)

// Encode appends the featurizer (group tag, column prefix, trained LDA
// model) to an open codec stream.
func (tf *TopicFeaturizer) Encode(w *codec.Writer) {
	w.Uvarint(uint64(tf.group))
	w.Str(tf.prefix)
	tf.model.Encode(w)
}

// DecodeTopicFeaturizer reads a featurizer written by Encode; Apply on the
// result produces bit-identical topic columns.
func DecodeTopicFeaturizer(r *codec.Reader) (*TopicFeaturizer, error) {
	tf := &TopicFeaturizer{group: Group(r.Uvarint()), prefix: r.Str()}
	m, err := topic.Decode(r)
	if err != nil {
		return nil, err
	}
	tf.model = m
	return tf, r.Err()
}

// Encode appends the selector's scoring state (source schema, per-column
// standardization, selected pairs) to an open codec stream.
func (s *SecondOrderSelector) Encode(w *codec.Writer) {
	w.Strs(s.sourceNames)
	w.Floats(s.means)
	w.Floats(s.stds)
	w.Uvarint(uint64(len(s.pairs)))
	for _, p := range s.pairs {
		w.Uvarint(uint64(p.I))
		w.Uvarint(uint64(p.J))
		w.Float(p.Weight)
	}
}

// DecodeSecondOrder reads a selector written by Encode.
func DecodeSecondOrder(r *codec.Reader) (*SecondOrderSelector, error) {
	s := &SecondOrderSelector{
		sourceNames: r.Strs(),
		means:       r.Floats(),
		stds:        r.Floats(),
	}
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.pairs = make([]fm.Pair, n)
	for k := range s.pairs {
		s.pairs[k] = fm.Pair{I: int(r.Uvarint()), J: int(r.Uvarint()), Weight: r.Float()}
	}
	nf := len(s.sourceNames)
	if len(s.means) != nf || len(s.stds) != nf {
		r.Fail("second-order standardization does not match source schema")
		return nil, r.Err()
	}
	for _, p := range s.pairs {
		if p.I >= nf || p.J >= nf {
			r.Fail("second-order pair index out of range")
			return nil, r.Err()
		}
	}
	return s, r.Err()
}

// Package features implements the paper's feature-engineering layer
// (Section 4.1): it turns the raw warehouse tables of one observation window
// into the unified wide table — one feature vector per customer — covering
// the nine feature groups F1-F9 of Table 2.
//
// Group inventory (matching the paper's counts, 150 features total):
//
//	F1 baseline BSS features            70
//	F2 CS KPI/KQI features               9
//	F3 PS KPI/KQI + location features   25
//	F4 call-graph features               2  (PageRank + label propagation)
//	F5 message-graph features            2
//	F6 co-occurrence-graph features      2
//	F7 complaint topic features         10
//	F8 search-query topic features      10
//	F9 FM-selected second-order features 20
package features

import (
	"fmt"
	"sort"

	"telcochurn/internal/dataset"
)

// Group identifies one of the paper's feature groups.
type Group int

// The nine feature groups of Table 2.
const (
	F1Baseline Group = iota + 1
	F2CS
	F3PS
	F4CallGraph
	F5MessageGraph
	F6CooccurrenceGraph
	F7ComplaintTopics
	F8SearchTopics
	F9SecondOrder
)

// String returns the paper's group label.
func (g Group) String() string {
	switch g {
	case F1Baseline:
		return "F1"
	case F2CS:
		return "F2"
	case F3PS:
		return "F3"
	case F4CallGraph:
		return "F4"
	case F5MessageGraph:
		return "F5"
	case F6CooccurrenceGraph:
		return "F6"
	case F7ComplaintTopics:
		return "F7"
	case F8SearchTopics:
		return "F8"
	case F9SecondOrder:
		return "F9"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// AllGroups returns F1..F9 in order.
func AllGroups() []Group {
	return []Group{F1Baseline, F2CS, F3PS, F4CallGraph, F5MessageGraph,
		F6CooccurrenceGraph, F7ComplaintTopics, F8SearchTopics, F9SecondOrder}
}

// Frame is a wide table under construction: rows are customers (fixed at
// creation), columns accumulate as feature groups are added.
type Frame struct {
	ids   []int64
	index map[int64]int
	names []string
	x     [][]float64
	group []Group // group of each column
}

// NewFrame creates a frame over the given customer universe. IDs are sorted
// and deduplicated.
func NewFrame(ids []int64) *Frame {
	uniq := append([]int64(nil), ids...)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	out := uniq[:0]
	var last int64 = -1
	for _, id := range uniq {
		if id != last {
			out = append(out, id)
			last = id
		}
	}
	f := &Frame{ids: out, index: make(map[int64]int, len(out)), x: make([][]float64, len(out))}
	for i, id := range out {
		f.index[id] = i
	}
	return f
}

// IDs returns the customer IDs in row order (shared slice).
func (f *Frame) IDs() []int64 { return f.ids }

// NumRows returns the number of customers.
func (f *Frame) NumRows() int { return len(f.ids) }

// NumColumns returns the number of features added so far.
func (f *Frame) NumColumns() int { return len(f.names) }

// Names returns the feature names in column order.
func (f *Frame) Names() []string { return append([]string(nil), f.names...) }

// Groups returns the group tag of every column.
func (f *Frame) Groups() []Group { return append([]Group(nil), f.group...) }

// AddColumn appends a feature column; customers absent from values get def.
func (f *Frame) AddColumn(g Group, name string, values map[int64]float64, def float64) {
	f.names = append(f.names, name)
	f.group = append(f.group, g)
	for i, id := range f.ids {
		v, ok := values[id]
		if !ok {
			v = def
		}
		f.x[i] = append(f.x[i], v)
	}
}

// AddDense appends a feature column given per-row values aligned with IDs.
func (f *Frame) AddDense(g Group, name string, values []float64) error {
	if len(values) != len(f.ids) {
		return fmt.Errorf("features: dense column %q has %d values, want %d", name, len(values), len(f.ids))
	}
	f.names = append(f.names, name)
	f.group = append(f.group, g)
	for i := range f.ids {
		f.x[i] = append(f.x[i], values[i])
	}
	return nil
}

// Row returns customer id's feature vector (shared slice) and whether the
// customer is in the frame.
func (f *Frame) Row(id int64) ([]float64, bool) {
	i, ok := f.index[id]
	if !ok {
		return nil, false
	}
	return f.x[i], true
}

// Value returns the named feature for a customer (testing helper).
func (f *Frame) Value(id int64, name string) (float64, bool) {
	i, ok := f.index[id]
	if !ok {
		return 0, false
	}
	for j, n := range f.names {
		if n == name {
			return f.x[i][j], true
		}
	}
	return 0, false
}

// SelectGroups returns a new frame containing only columns whose group is in
// keep (row universe shared).
func (f *Frame) SelectGroups(keep ...Group) *Frame {
	keepSet := make(map[Group]bool, len(keep))
	for _, g := range keep {
		keepSet[g] = true
	}
	var cols []int
	for j, g := range f.group {
		if keepSet[g] {
			cols = append(cols, j)
		}
	}
	nf := &Frame{ids: f.ids, index: f.index, x: make([][]float64, len(f.ids))}
	for _, j := range cols {
		nf.names = append(nf.names, f.names[j])
		nf.group = append(nf.group, f.group[j])
	}
	for i := range f.x {
		row := make([]float64, 0, len(cols))
		for _, j := range cols {
			row = append(row, f.x[i][j])
		}
		nf.x[i] = row
	}
	return nf
}

// ToDataset converts the frame into a labeled dataset using the given label
// map; customers without a label entry get def (use -1 and filter upstream
// if labels must be complete).
func (f *Frame) ToDataset(labels map[int64]int, def int) *dataset.Dataset {
	d := dataset.New(append([]string(nil), f.names...))
	d.X = make([][]float64, len(f.ids))
	d.Y = make([]int, len(f.ids))
	for i, id := range f.ids {
		d.X[i] = f.x[i]
		y, ok := labels[id]
		if !ok {
			y = def
		}
		d.Y[i] = y
	}
	return d
}

// CloneRows deep-copies the feature matrix (use before standardizing when
// the frame will be reused).
func (f *Frame) CloneRows() *Frame {
	nf := &Frame{
		ids:   f.ids,
		index: f.index,
		names: append([]string(nil), f.names...),
		group: append([]Group(nil), f.group...),
		x:     make([][]float64, len(f.x)),
	}
	for i, row := range f.x {
		nf.x[i] = append([]float64(nil), row...)
	}
	return nf
}

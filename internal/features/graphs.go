package features

import (
	"telcochurn/internal/graph"
	"telcochurn/internal/parallel"
	"telcochurn/internal/table"
)

// BuildCallGraph builds the call graph of Section 4.1.2 from the window's
// CDRs: undirected, edge weight = accumulated mutual calling seconds.
// Off-net peers and service numbers are excluded (they are not customers).
func BuildCallGraph(tbl Tables, win Window, daysPerMonth int, isCustomer func(int64) bool) *graph.Graph {
	g := graph.New()
	calls := tbl.Calls
	inWin := inWindow(calls, win, daysPerMonth)
	imsi := calls.MustCol("imsi").Ints
	peer := calls.MustCol("peer").Ints
	dur := calls.MustCol("dur").Floats
	success := calls.MustCol("success").Ints
	svc := calls.MustCol("svc").Ints
	n := calls.NumRows()
	for i := 0; i < n; i++ {
		if !inWin(i) || success[i] != 1 || svc[i] == 1 || dur[i] <= 0 {
			continue
		}
		if !isCustomer(peer[i]) {
			continue
		}
		g.AddEdge(imsi[i], peer[i], dur[i])
	}
	return g
}

// BuildMessageGraph builds the message graph: edge weight = number of P2P
// messages between two customers.
func BuildMessageGraph(tbl Tables, win Window, daysPerMonth int, isCustomer func(int64) bool) *graph.Graph {
	g := graph.New()
	msgs := tbl.Messages
	inWin := inWindow(msgs, win, daysPerMonth)
	imsi := msgs.MustCol("imsi").Ints
	peer := msgs.MustCol("peer").Ints
	kind := msgs.MustCol("kind").Ints
	n := msgs.NumRows()
	for i := 0; i < n; i++ {
		if !inWin(i) || kind[i] != 0 {
			continue
		}
		if !isCustomer(peer[i]) {
			continue
		}
		g.AddEdge(imsi[i], peer[i], 1)
	}
	return g
}

// BuildCooccurrenceGraph builds the co-occurrence graph: edge weight = the
// number of spatiotemporal cubes (cell × day × time slot, the paper's
// "within 20 minute and 100x100 meter cube") two customers share in the
// window. Cube populations are capped to avoid quadratic blowup on very
// crowded cells; within a cap of c members a cube contributes c(c-1)/2
// edges, which preserves the community structure the feature needs.
func BuildCooccurrenceGraph(tbl Tables, win Window, daysPerMonth int, isCustomer func(int64) bool) *graph.Graph {
	const cubeCap = cooccurrenceCubeCap
	g := graph.New()
	loc := tbl.Locations
	inWin := inWindow(loc, win, daysPerMonth)
	imsi := loc.MustCol("imsi").Ints
	day := loc.MustCol("day").Ints
	month := loc.MustCol("month").Ints
	slot := loc.MustCol("slot").Ints
	cell := loc.MustCol("cell").Ints

	type cube struct {
		abs  int64 // month*100+day packed with slot and cell below
		slot int64
		cell int64
	}
	members := make(map[cube][]int64)
	// Cubes are emitted in first-seen order, not map order: edge insertion
	// order fixes the adjacency-list fold order of later PageRank sweeps, so
	// it must depend only on the input rows for graph scores to be
	// reproducible bit for bit.
	var order []cube
	n := loc.NumRows()
	for i := 0; i < n; i++ {
		if !inWin(i) || !isCustomer(imsi[i]) {
			continue
		}
		c := cube{abs: month[i]*64 + day[i], slot: slot[i], cell: cell[i]}
		m, seen := members[c]
		if !seen {
			order = append(order, c)
		}
		if len(m) >= cubeCap {
			continue
		}
		// Deduplicate repeated fixes of the same customer in one cube.
		dup := false
		for _, id := range m {
			if id == imsi[i] {
				dup = true
				break
			}
		}
		if !dup {
			members[c] = append(m, imsi[i])
		}
	}
	for _, c := range order {
		m := members[c]
		for a := 0; a < len(m); a++ {
			for b := a + 1; b < len(m); b++ {
				g.AddEdge(m[a], m[b], 1)
			}
		}
	}
	return g
}

// GraphFeatureInput bundles what the graph features need beyond the raw
// tables: the churner seeds from the previous month (known labels) and a
// stable-customer sample for the label-propagation negative class.
type GraphFeatureInput struct {
	// PrevChurners holds customers labeled churners in the month before the
	// feature window (Section 4.1.2: "the churners in the previous month").
	PrevChurners map[int64]bool
	// StableSample holds known non-churners used as class-0 seeds so label
	// propagation has both classes (without them every propagated
	// distribution collapses to the churner class).
	StableSample map[int64]bool
}

// AddGraphFeatures computes PageRank and label-propagation features on the
// three graphs and adds the six F4-F6 columns (paper names from Table 4).
// The three graphs build and iterate concurrently across `workers`
// goroutines (0 = GOMAXPROCS) and the per-graph algorithms parallelize
// internally; columns land in fixed graph order, so the frame is
// bit-identical for any worker count.
func AddGraphFeatures(f *Frame, tbl Tables, win Window, daysPerMonth int, in GraphFeatureInput, workers int) {
	isCustomer := func(id int64) bool {
		_, ok := f.index[id]
		return ok || in.PrevChurners[id]
	}
	type graphSpec struct {
		build  func(Tables, Window, int, func(int64) bool) *graph.Graph
		group  Group
		suffix string
	}
	specs := []graphSpec{
		{BuildCallGraph, F4CallGraph, "voice"},
		{BuildMessageGraph, F5MessageGraph, "message"},
		{BuildCooccurrenceGraph, F6CooccurrenceGraph, "cooccurrence"},
	}

	seeds := seedMap(in)
	type graphCols struct {
		pr, lp map[int64]float64
	}
	results := make([]graphCols, len(specs))
	parallel.ForGrain(workers, len(specs), 1, func(i int) {
		g := specs[i].build(tbl, win, daysPerMonth, isCustomer)
		pr, lp := scoreGraph(g, seeds, workers)
		results[i] = graphCols{pr: pr, lp: lp}
	})

	for i, spec := range specs {
		f.AddColumn(spec.group, "pagerank_"+spec.suffix, results[i].pr, 0)
		f.AddColumn(spec.group, "labelpropagation_"+spec.suffix, results[i].lp, 0.5)
	}
}

// seedMap flattens the seed input into label-propagation class seeds; the
// churner class wins when a customer appears in both sets.
func seedMap(in GraphFeatureInput) map[int64]int {
	seeds := make(map[int64]int)
	for id := range in.PrevChurners {
		seeds[id] = 1
	}
	for id := range in.StableSample {
		if _, dup := seeds[id]; !dup {
			seeds[id] = 0
		}
	}
	return seeds
}

// scoreGraph runs the two per-graph feature algorithms — PageRank scaled by
// vertex count (population-size invariant) and 2-round label propagation —
// returning the per-customer column maps. Both the in-memory and the sharded
// builders score through here, so their columns differ only by how the graph
// itself was assembled.
func scoreGraph(g *graph.Graph, seeds map[int64]int, workers int) (prCol, lpCol map[int64]float64) {
	pr := g.PageRank(graph.PageRankOptions{Workers: workers})
	prCol = make(map[int64]float64, len(pr))
	nv := float64(g.NumVertices())
	for id, v := range pr {
		prCol[id] = v * nv
	}
	lp := g.LabelPropagation(seeds, 2, graph.LabelPropOptions{Workers: workers})
	lpCol = make(map[int64]float64, len(lp))
	for id, probs := range lp {
		lpCol[id] = probs[1]
	}
	return prCol, lpCol
}

// ChurnersOf extracts the labeled churners of a month from its truth table.
func ChurnersOf(truth *table.Table) map[int64]bool {
	out := make(map[int64]bool)
	imsi := truth.MustCol("imsi").Ints
	churn := truth.MustCol("churn").Ints
	for i, id := range imsi {
		if churn[i] == 1 {
			out[id] = true
		}
	}
	return out
}

// StableOf extracts labeled non-churners of a month, downsampled by taking
// every strideth one (deterministic, no RNG needed for seeds).
func StableOf(truth *table.Table, stride int) map[int64]bool {
	if stride < 1 {
		stride = 1
	}
	out := make(map[int64]bool)
	imsi := truth.MustCol("imsi").Ints
	churn := truth.MustCol("churn").Ints
	k := 0
	for i, id := range imsi {
		if churn[i] == 0 {
			if k%stride == 0 {
				out[id] = true
			}
			k++
		}
	}
	return out
}

package features

import (
	"math"
	"testing"

	"telcochurn/internal/synth"
	"telcochurn/internal/table"
	"telcochurn/internal/topic"
)

// cloneTables deep-copies a Tables bundle so a maintainer can mutate its
// copy without corrupting the control build's input.
func cloneTables(t *testing.T, tbl Tables) Tables {
	t.Helper()
	out, err := CloneTables(tbl)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func tableByName(tbl *Tables, name string) **table.Table {
	switch name {
	case synth.TableCalls:
		return &tbl.Calls
	case synth.TableMessages:
		return &tbl.Messages
	case synth.TableRecharges:
		return &tbl.Recharges
	case synth.TableComplaints:
		return &tbl.Complaints
	case synth.TableWeb:
		return &tbl.Web
	case synth.TableSearch:
		return &tbl.Search
	case synth.TableLocations:
		return &tbl.Locations
	}
	return nil
}

// TestMaintainerMatchesShardedRebuild is the bit-identity property test:
// replaying N synth events through the incremental maintainer yields
// per-customer feature values Float64bits-identical to a from-scratch
// BuildShardedFrame over the merged data (base tables with the same events
// appended, as store.EventLog.MergeInto would leave them).
func TestMaintainerMatchesShardedRebuild(t *testing.T) {
	months, cfg := simOnce(t)
	const month = 2
	win := MonthWindow(month, cfg.DaysPerMonth)
	base, err := FromMonthData(months[month-1 : month])
	if err != nil {
		t.Fatal(err)
	}

	// Featurizers are fitted once on the pre-event corpus, exactly as a
	// trained artifact's featurizers predate streamed events.
	comp, err := FitTopicFeaturizer(base.Complaints, win, cfg.DaysPerMonth, F7ComplaintTopics, "complaint", topic.Config{K: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	search, err := FitTopicFeaturizer(base.Search, win, cfg.DaysPerMonth, F8SearchTopics, "search", topic.Config{K: 5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}

	universe := base.Customers.MustCol("imsi").Ints
	targets := append([]int64(nil), universe[:40]...)
	targets = append(targets, 4_999_999) // off-universe: logged, maintains nothing
	events := synth.GenerateEvents(targets, month, cfg.DaysPerMonth, 400, 7)
	if len(events) < 5 {
		t.Fatalf("generator produced only %d tables", len(events))
	}

	// Incremental path: fold the events into a maintainer over a private
	// copy of the serving tables.
	maint, err := NewMaintainer(cloneTables(t, base), win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	affected := map[int64]bool{}
	applied := 0
	for _, name := range StreamableTables {
		ev := events[name]
		if ev == nil {
			continue
		}
		ids, n, err := maint.Apply(name, ev)
		if err != nil {
			t.Fatalf("apply %s: %v", name, err)
		}
		applied += n
		for _, id := range ids {
			affected[id] = true
		}
	}
	if applied == 0 || len(affected) == 0 {
		t.Fatalf("no events applied (applied=%d affected=%d)", applied, len(affected))
	}
	if maint.Applied() != applied {
		t.Fatalf("Applied() = %d, want %d", maint.Applied(), applied)
	}
	if affected[4_999_999] {
		t.Fatal("off-universe customer reported as affected")
	}

	// Control path: from-scratch sharded build over the merged data.
	merged := cloneTables(t, base)
	for _, name := range StreamableTables {
		ev := events[name]
		if ev == nil {
			continue
		}
		if err := (*tableByName(&merged, name)).AppendTable(ev); err != nil {
			t.Fatal(err)
		}
	}
	groups := []Group{F1Baseline, F2CS, F3PS, F7ComplaintTopics, F8SearchTopics}
	spec := shardedSpec(t, merged, 4, 2, win, cfg.DaysPerMonth, groups)
	spec.Complaints = comp
	spec.Search = search
	want, _, err := BuildShardedFrame(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Every affected customer's maintained row must be bit-identical to
	// the rebuilt frame's row, column for column.
	names := want.Names()
	for id := range affected {
		got, err := maint.CustomerFrame(id, groups, comp, search)
		if err != nil {
			t.Fatalf("customer frame %d: %v", id, err)
		}
		gn := got.Names()
		if len(gn) != len(names) {
			t.Fatalf("imsi %d: %d columns, want %d", id, len(gn), len(names))
		}
		wrow, ok := want.Row(id)
		if !ok {
			t.Fatalf("imsi %d missing from rebuilt frame", id)
		}
		grow, ok := got.Row(id)
		if !ok {
			t.Fatalf("imsi %d missing from its own frame", id)
		}
		for j := range names {
			if gn[j] != names[j] {
				t.Fatalf("imsi %d column %d: %q vs %q", id, j, gn[j], names[j])
			}
			if math.Float64bits(grow[j]) != math.Float64bits(wrow[j]) {
				t.Fatalf("imsi %d col %q: incremental %v vs rebuild %v (not bit-identical)",
					id, names[j], grow[j], wrow[j])
			}
		}
	}

	// And an untouched customer still matches too (nothing leaked).
	for _, id := range universe {
		if !affected[id] {
			got, err := maint.CustomerFrame(id, groups, comp, search)
			if err != nil {
				t.Fatal(err)
			}
			wrow, _ := want.Row(id)
			grow, _ := got.Row(id)
			for j := range names {
				if math.Float64bits(grow[j]) != math.Float64bits(wrow[j]) {
					t.Fatalf("untouched imsi %d col %q drifted", id, names[j])
				}
			}
			break
		}
	}
}

func TestMaintainerRejections(t *testing.T) {
	months, cfg := simOnce(t)
	base, err := FromMonthData(months[0:1])
	if err != nil {
		t.Fatal(err)
	}
	win := MonthWindow(1, cfg.DaysPerMonth)

	// Multi-month and partial windows are not maintainable.
	if _, err := NewMaintainer(cloneTables(t, base), Window{FromAbs: 1, ToAbs: 2 * cfg.DaysPerMonth}, cfg.DaysPerMonth); err == nil {
		t.Error("multi-month window accepted")
	}
	if _, err := NewMaintainer(cloneTables(t, base), Window{FromAbs: 2, ToAbs: cfg.DaysPerMonth}, cfg.DaysPerMonth); err == nil {
		t.Error("partial-month window accepted")
	}

	maint, err := NewMaintainer(cloneTables(t, base), win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot tables are not streamable.
	if _, _, err := maint.Apply(synth.TableBilling, base.Billing); err == nil {
		t.Error("billing events accepted")
	}
	// Unknown customers have no frame.
	if _, err := maint.CustomerFrame(4_999_999, []Group{F1Baseline}, nil, nil); err == nil {
		t.Error("off-universe customer frame built")
	}
	// Events outside the serving month are skipped, not applied.
	ev := table.NewTable(synth.RechargesSchema)
	if err := ev.AppendRow(base.Customers.MustCol("imsi").Ints[0], int64(7), int64(1), 30.0); err != nil {
		t.Fatal(err)
	}
	ids, n, err := maint.Apply(synth.TableRecharges, ev)
	if err != nil || n != 0 || len(ids) != 0 {
		t.Errorf("out-of-month event: ids=%v n=%d err=%v, want skip", ids, n, err)
	}
}

package features

import (
	"testing"

	"telcochurn/internal/synth"
	"telcochurn/internal/topic"
)

var (
	cachedMonths []*synth.MonthData
	cachedCfg    synth.Config
)

func simOnce(t *testing.T) ([]*synth.MonthData, synth.Config) {
	t.Helper()
	if cachedMonths == nil {
		cachedCfg = synth.DefaultConfig()
		cachedCfg.Customers = 1000
		cachedCfg.Months = 3
		cachedMonths = synth.Simulate(cachedCfg)
	}
	return cachedMonths, cachedCfg
}

func baseFrame(t *testing.T, month int) (*Frame, Tables, Window, int) {
	t.Helper()
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	win := MonthWindow(month, cfg.DaysPerMonth)
	frame, err := BaseFeatures(tbl, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	return frame, tbl, win, cfg.DaysPerMonth
}

func TestGroupCountsMatchPaper(t *testing.T) {
	frame, tbl, win, days := baseFrame(t, 2)
	counts := map[Group]int{}
	for _, g := range frame.Groups() {
		counts[g]++
	}
	if counts[F1Baseline] != 70 {
		t.Errorf("F1 has %d features, want 70", counts[F1Baseline])
	}
	if counts[F2CS] != 9 {
		t.Errorf("F2 has %d features, want 9", counts[F2CS])
	}
	if counts[F3PS] != 25 {
		t.Errorf("F3 has %d features, want 25", counts[F3PS])
	}
	// Graph features: 2 per graph.
	months, _ := simOnce(t)
	in := GraphFeatureInput{
		PrevChurners: ChurnersOf(months[1].Truth),
		StableSample: StableOf(months[1].Truth, 10),
	}
	AddGraphFeatures(frame, tbl, win, days, in, 0)
	counts = map[Group]int{}
	for _, g := range frame.Groups() {
		counts[g]++
	}
	for _, g := range []Group{F4CallGraph, F5MessageGraph, F6CooccurrenceGraph} {
		if counts[g] != 2 {
			t.Errorf("%v has %d features, want 2", g, counts[g])
		}
	}
}

func TestWindowMath(t *testing.T) {
	if got := AbsDay(1, 1, 30); got != 1 {
		t.Errorf("AbsDay(1,1) = %d", got)
	}
	if got := AbsDay(3, 15, 30); got != 75 {
		t.Errorf("AbsDay(3,15) = %d", got)
	}
	w := MonthWindow(2, 30)
	if w.FromAbs != 31 || w.ToAbs != 60 {
		t.Errorf("MonthWindow(2) = %+v", w)
	}
	if w.LastMonth(30) != 2 {
		t.Errorf("LastMonth = %d", w.LastMonth(30))
	}
	if got := w.Months(30); len(got) != 1 || got[0] != 2 {
		t.Errorf("Months = %v", got)
	}
	span := Window{FromAbs: 45, ToAbs: 75}
	if got := span.Months(30); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("spanning Months = %v", got)
	}
	// Snapshot month: full month end uses that month, mid-month uses prior.
	if got := w.SnapshotMonth(30); got != 2 {
		t.Errorf("aligned SnapshotMonth = %d", got)
	}
	if got := span.SnapshotMonth(30); got != 2 {
		t.Errorf("mid-month SnapshotMonth = %d, want 2", got)
	}
}

func TestFrameOperations(t *testing.T) {
	f := NewFrame([]int64{3, 1, 2, 2})
	if f.NumRows() != 3 {
		t.Errorf("dedup rows = %d, want 3", f.NumRows())
	}
	if ids := f.IDs(); ids[0] != 1 || ids[2] != 3 {
		t.Errorf("IDs not sorted: %v", ids)
	}
	f.AddColumn(F1Baseline, "a", map[int64]float64{1: 10, 3: 30}, -1)
	if v, _ := f.Value(2, "a"); v != -1 {
		t.Errorf("default fill = %g, want -1", v)
	}
	if v, ok := f.Value(3, "a"); !ok || v != 30 {
		t.Errorf("Value(3,a) = %g,%v", v, ok)
	}
	if err := f.AddDense(F2CS, "b", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddDense(F2CS, "short", []float64{1}); err == nil {
		t.Error("want error for wrong dense length")
	}
	sel := f.SelectGroups(F2CS)
	if sel.NumColumns() != 1 || sel.Names()[0] != "b" {
		t.Errorf("SelectGroups = %v", sel.Names())
	}
	d := f.ToDataset(map[int64]int{1: 1, 2: 0}, -1)
	if d.Y[0] != 1 || d.Y[1] != 0 || d.Y[2] != -1 {
		t.Errorf("labels = %v", d.Y)
	}
	clone := f.CloneRows()
	row, _ := f.Row(1)
	row[0] = 999
	if cr, _ := clone.Row(1); cr[0] == 999 {
		t.Error("CloneRows shares storage")
	}
}

func TestBaseFeatureValuesAgainstRawTables(t *testing.T) {
	frame, tbl, win, days := baseFrame(t, 2)
	inWin := inWindow(tbl.Calls, win, days)
	imsi := tbl.Calls.MustCol("imsi").Ints
	dur := tbl.Calls.MustCol("dur").Floats
	success := tbl.Calls.MustCol("success").Ints
	// Manual recompute of voice_dur for the first frame customer with calls.
	want := map[int64]float64{}
	for i := range imsi {
		if inWin(i) && success[i] == 1 {
			want[imsi[i]] += dur[i]
		}
	}
	checked := 0
	for _, id := range frame.IDs() {
		if w, ok := want[id]; ok {
			got, _ := frame.Value(id, "voice_dur")
			if diff := got - w; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("voice_dur(%d) = %g, want %g", id, got, w)
			}
			checked++
			if checked > 50 {
				break
			}
		}
	}
	if checked == 0 {
		t.Fatal("no customers verified")
	}
}

func TestUniverseIsSnapshotMonth(t *testing.T) {
	frame, tbl, win, days := baseFrame(t, 2)
	snap := snapshotMonth(tbl.Customers, win, days)
	if frame.NumRows() != snap.NumRows() {
		t.Errorf("frame rows %d != snapshot rows %d", frame.NumRows(), snap.NumRows())
	}
}

func TestGraphBuildersExcludeNonCustomers(t *testing.T) {
	_, tbl, win, days := baseFrame(t, 2)
	g := BuildCallGraph(tbl, win, days, synth.IsCustomerID)
	for _, id := range g.IDs() {
		if !synth.IsCustomerID(id) {
			t.Fatalf("non-customer %d in call graph", id)
		}
	}
	if g.NumEdges() == 0 {
		t.Error("call graph has no edges")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("call graph invalid: %v", err)
	}
	mg := BuildMessageGraph(tbl, win, days, synth.IsCustomerID)
	if mg.NumEdges() == 0 {
		t.Error("message graph has no edges")
	}
	cg := BuildCooccurrenceGraph(tbl, win, days, synth.IsCustomerID)
	if cg.NumEdges() == 0 {
		t.Error("co-occurrence graph has no edges")
	}
}

func TestChurnersOfAndStableOf(t *testing.T) {
	months, _ := simOnce(t)
	truth := months[0].Truth
	churners := ChurnersOf(truth)
	stable := StableOf(truth, 10)
	churnCol := truth.MustCol("churn").Ints
	nChurn := 0
	for _, v := range churnCol {
		if v == 1 {
			nChurn++
		}
	}
	if len(churners) != nChurn {
		t.Errorf("ChurnersOf = %d, want %d", len(churners), nChurn)
	}
	wantStable := (truth.NumRows() - nChurn + 9) / 10
	if len(stable) != wantStable {
		t.Errorf("StableOf stride 10 = %d, want %d", len(stable), wantStable)
	}
	for id := range stable {
		if churners[id] {
			t.Fatal("stable sample contains a churner")
		}
	}
}

func TestTopicFeaturizerSimplexOutput(t *testing.T) {
	frame, tbl, win, days := baseFrame(t, 2)
	tf, err := FitTopicFeaturizer(tbl.Search, win, days, F8SearchTopics, "search",
		topic.Config{K: 5, Iters: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := frame.NumColumns()
	tf.Apply(frame, tbl.Search, win, days)
	if frame.NumColumns() != before+5 {
		t.Fatalf("topic featurizer added %d columns, want 5", frame.NumColumns()-before)
	}
	for _, id := range frame.IDs()[:100] {
		row, _ := frame.Row(id)
		sum := 0.0
		for _, v := range row[before:] {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("topic feature %g out of range", v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("topic features sum to %g", sum)
		}
	}
}

func TestSecondOrderSelectorRoundTrip(t *testing.T) {
	frame, _, _, _ := baseFrame(t, 2)
	frame = frame.SelectGroups(F1Baseline)
	months, _ := simOnce(t)
	labels := map[int64]int{}
	imsi := months[2].Truth.MustCol("imsi").Ints
	churn := months[2].Truth.MustCol("churn").Ints
	for i, id := range imsi {
		labels[id] = int(churn[i])
	}
	sel, err := FitSecondOrder(frame, labels, SecondOrderConfig{NumPairs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Pairs()) != 5 {
		t.Fatalf("pairs = %d, want 5", len(sel.Pairs()))
	}
	before := frame.NumColumns()
	if err := sel.Apply(frame); err != nil {
		t.Fatal(err)
	}
	if frame.NumColumns() != before+5 {
		t.Errorf("Apply added %d columns", frame.NumColumns()-before)
	}
	// Names include the _x_ marker and groups tag F9.
	names := frame.Names()
	groups := frame.Groups()
	for i := before; i < frame.NumColumns(); i++ {
		if groups[i] != F9SecondOrder {
			t.Errorf("column %d group = %v", i, groups[i])
		}
		if len(names[i]) == 0 {
			t.Error("empty pair name")
		}
	}
	// Applying to a frame with mismatched leading columns fails.
	bad := NewFrame(frame.IDs())
	bad.AddColumn(F1Baseline, "wrong", nil, 0)
	if err := sel.Apply(bad); err == nil {
		t.Error("want error for mismatched source columns")
	}
}

func TestDeclineFeaturesSeparateChurners(t *testing.T) {
	// Signal-phase customers front-load usage; their call_dur_decline should
	// be lower on average than stable customers'.
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	win := MonthWindow(2, cfg.DaysPerMonth)
	frame, err := BaseFeatures(tbl, win, cfg.DaysPerMonth)
	if err != nil {
		t.Fatal(err)
	}
	// Churners of month 3 were (mostly) in their signal month during month 2.
	churnNext := ChurnersOf(months[2].Truth)
	var churnSum, churnN, stableSum, stableN float64
	for _, id := range frame.IDs() {
		v, ok := frame.Value(id, "last_active_day")
		if !ok {
			continue
		}
		if churnNext[id] {
			churnSum += v
			churnN++
		} else {
			stableSum += v
			stableN++
		}
	}
	if churnN == 0 || stableN == 0 {
		t.Skip("no churners in tiny world")
	}
	if churnSum/churnN >= stableSum/stableN {
		t.Errorf("churners' last_active_day %.1f not below stable %.1f",
			churnSum/churnN, stableSum/stableN)
	}
}

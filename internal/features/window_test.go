package features

import (
	"testing"
)

// TestVelocityWindowFiltersEvents verifies that a window shifted past a
// month boundary picks up exactly the events inside it and keeps using the
// prior month's snapshots (the Table 5 machinery).
func TestVelocityWindowFiltersEvents(t *testing.T) {
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	days := cfg.DaysPerMonth
	// Window: day 16 of month 2 through day 15 of month 3.
	win := Window{FromAbs: AbsDay(2, 16, days), ToAbs: AbsDay(3, 15, days)}

	frame, err := BaseFeatures(tbl, win, days)
	if err != nil {
		t.Fatal(err)
	}
	// Universe: snapshot month is 2 (mid-month end), so rows match month 2.
	if frame.NumRows() != cfg.Customers {
		t.Errorf("frame rows = %d, want %d", frame.NumRows(), cfg.Customers)
	}

	// Recompute one aggregate by hand over the shifted range.
	inWin := inWindow(tbl.Calls, win, days)
	imsi := tbl.Calls.MustCol("imsi").Ints
	dur := tbl.Calls.MustCol("dur").Floats
	success := tbl.Calls.MustCol("success").Ints
	want := map[int64]float64{}
	for i := range imsi {
		if inWin(i) && success[i] == 1 {
			want[imsi[i]] += dur[i]
		}
	}
	checked := 0
	for _, id := range frame.IDs() {
		w, ok := want[id]
		if !ok {
			continue
		}
		got, _ := frame.Value(id, "voice_dur")
		if diff := got - w; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("voice_dur(%d) = %g, want %g", id, got, w)
		}
		if checked++; checked > 30 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing verified")
	}

	// Balance comes from month 2's snapshot, not month 3's.
	billing2 := snapshotMonth(tbl.Billing, win, days)
	snapBalance := colMap(billing2, "balance")
	for _, id := range frame.IDs()[:20] {
		got, _ := frame.Value(id, "balance")
		if want, ok := snapBalance[id]; ok && got != want {
			t.Fatalf("balance(%d) = %g, want month-2 snapshot %g", id, got, want)
		}
	}
}

// TestDeclineFeatureUsesWindowMidpoint ensures the decline split tracks the
// window, not the calendar month.
func TestDeclineFeatureUsesWindowMidpoint(t *testing.T) {
	months, cfg := simOnce(t)
	tbl, err := FromMonthData(months)
	if err != nil {
		t.Fatal(err)
	}
	days := cfg.DaysPerMonth
	aligned := MonthWindow(2, days)
	shifted := Window{FromAbs: aligned.FromAbs + 10, ToAbs: aligned.ToAbs + 10}

	fa, err := BaseFeatures(tbl, aligned, days)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := BaseFeatures(tbl, shifted, days)
	if err != nil {
		t.Fatal(err)
	}
	// The two windows see different halves; at least some customers must
	// have different decline values.
	diff := 0
	for _, id := range fa.IDs() {
		va, _ := fa.Value(id, "call_dur_decline")
		vb, ok := fs.Value(id, "call_dur_decline")
		if ok && va != vb {
			diff++
		}
	}
	if diff < fa.NumRows()/4 {
		t.Errorf("only %d/%d customers changed decline under a 10-day shift", diff, fa.NumRows())
	}
}

package features

import (
	"testing"

	"telcochurn/internal/synth"
	"telcochurn/internal/table"
)

// locFixture builds a Locations table by hand so edge weights can be
// asserted exactly.
func locFixture(t *testing.T, rows [][5]int64) Tables {
	t.Helper()
	loc := table.NewTable(synth.LocationsSchema)
	for _, r := range rows {
		// imsi, month, day, slot, cell
		if err := loc.AppendRow(r[0], r[1], r[2], r[3], r[4], int64(0), 31.0, 121.0); err != nil {
			t.Fatal(err)
		}
	}
	return Tables{Locations: loc}
}

func TestCooccurrenceEdgeWeights(t *testing.T) {
	a, b, c := int64(1_000_001), int64(1_000_002), int64(1_000_003)
	tbl := locFixture(t, [][5]int64{
		// Cube (month1, day1, slot0, cell7): a, b, and a duplicate fix of a.
		{a, 1, 1, 0, 7},
		{b, 1, 1, 0, 7},
		{a, 1, 1, 0, 7},
		// Cube (day2): a and b again -> second co-occurrence.
		{a, 1, 2, 0, 7},
		{b, 1, 2, 0, 7},
		// Different slot: a and c share once.
		{a, 1, 2, 1, 7},
		{c, 1, 2, 1, 7},
		// c alone in another cell: no edge.
		{c, 1, 3, 0, 9},
		// Outside the window: must be ignored.
		{a, 2, 1, 0, 7},
		{b, 2, 1, 0, 7},
	})
	win := MonthWindow(1, 30)
	g := BuildCooccurrenceGraph(tbl, win, 30, synth.IsCustomerID)

	if got := g.EdgeWeight(a, b); got != 2 {
		t.Errorf("w(a,b) = %g, want 2 (two shared cubes, duplicate fix deduped)", got)
	}
	if got := g.EdgeWeight(a, c); got != 1 {
		t.Errorf("w(a,c) = %g, want 1", got)
	}
	if got := g.EdgeWeight(b, c); got != 0 {
		t.Errorf("w(b,c) = %g, want 0", got)
	}
}

func TestCooccurrenceExcludesNonCustomers(t *testing.T) {
	a := int64(1_000_001)
	offnet := int64(5_000_001)
	tbl := locFixture(t, [][5]int64{
		{a, 1, 1, 0, 7},
		{offnet, 1, 1, 0, 7},
	})
	g := BuildCooccurrenceGraph(tbl, MonthWindow(1, 30), 30, synth.IsCustomerID)
	if g.NumEdges() != 0 {
		t.Errorf("off-net fix created %d edges", g.NumEdges())
	}
}

func TestCallGraphEdgeAccumulation(t *testing.T) {
	calls := table.NewTable(synth.CallsSchema)
	a, b := int64(1_000_001), int64(1_000_002)
	add := func(from, to int64, dur float64, success int64) {
		err := calls.AppendRow(from, to, int64(1), int64(5), dur,
			int64(synth.CallLocalInner), int64(1), int64(synth.OpSelf), success,
			int64(0), 1.0, 4.0, 4.0, 4.0, int64(0), int64(0), int64(0),
			int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
		if err != nil {
			t.Fatal(err)
		}
	}
	add(a, b, 60, 1)
	add(b, a, 30, 1) // reverse direction accumulates on the same edge
	add(a, b, 99, 0) // failed attempt: no edge weight
	tbl := Tables{Calls: calls}
	g := BuildCallGraph(tbl, MonthWindow(1, 30), 30, synth.IsCustomerID)
	if got := g.EdgeWeight(a, b); got != 90 {
		t.Errorf("w(a,b) = %g, want 90 (mutual calling time, failures excluded)", got)
	}
}

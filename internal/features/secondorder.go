package features

import (
	"errors"
	"fmt"
	"math/rand"

	"telcochurn/internal/dataset"
	"telcochurn/internal/fm"
)

// SecondOrderSelector implements Section 4.1.4: a factorization machine is
// trained on the labeled training frame; the pairwise weights ⟨v_i, v_j⟩ of
// Eq. (3) rank all feature pairs, and the top NumPairs become the F9
// second-order features x_i·x_j of the wide table.
//
// The selector standardizes source columns internally (products of raw
// scales would be dominated by unit choices) and applies the same transform
// at Apply time.
type SecondOrderSelector struct {
	sourceNames []string
	means, stds []float64
	pairs       []fm.Pair
}

// SecondOrderConfig configures selection.
type SecondOrderConfig struct {
	// NumPairs is the number of second-order features to keep (paper: 20).
	NumPairs int
	// FM configures the underlying factorization machine.
	FM fm.Config
}

func (c SecondOrderConfig) withDefaults() SecondOrderConfig {
	if c.NumPairs == 0 {
		c.NumPairs = 20
	}
	return c
}

// FitSecondOrder trains the selector on the labeled training frame (labels
// map customer -> 0/1 churn). Only customers with labels participate.
func FitSecondOrder(f *Frame, labels map[int64]int, cfg SecondOrderConfig) (*SecondOrderSelector, error) {
	cfg = cfg.withDefaults()
	d := dataset.New(f.Names())
	for i, id := range f.ids {
		y, ok := labels[id]
		if !ok || y < 0 {
			continue
		}
		row := append([]float64(nil), f.x[i]...)
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	if d.NumInstances() == 0 {
		return nil, errors.New("features: no labeled rows for second-order selection")
	}
	// Downsample majority class for FM training speed and balance.
	rng := rand.New(rand.NewSource(cfg.FM.Seed + 17))
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, errors.New("features: second-order selection needs both classes")
	}
	keepNeg := len(pos) * 3
	if keepNeg > len(neg) {
		keepNeg = len(neg)
	}
	perm := rng.Perm(len(neg))
	idx := append([]int(nil), pos...)
	for i := 0; i < keepNeg; i++ {
		idx = append(idx, neg[perm[i]])
	}
	d = d.Subset(idx).Clone()

	means, stds := d.Standardize()
	fmCfg := cfg.FM
	if fmCfg.LearningRate == 0 {
		// Dense standardized inputs need a gentler step than LIBFM's sparse
		// default to keep the pairwise term stable.
		fmCfg.LearningRate = 0.02
	}
	if fmCfg.Epochs == 0 {
		fmCfg.Epochs = 30
	}
	model, err := fm.Fit(d, fmCfg)
	if err != nil {
		return nil, err
	}
	return &SecondOrderSelector{
		sourceNames: f.Names(),
		means:       means,
		stds:        stds,
		pairs:       model.TopPairs(cfg.NumPairs),
	}, nil
}

// Pairs returns the selected feature pairs with their FM weights.
func (s *SecondOrderSelector) Pairs() []fm.Pair {
	return append([]fm.Pair(nil), s.pairs...)
}

// PairName returns the wide-table column name of the k-th selected pair,
// e.g. "innet_dura_x_total_charge".
func (s *SecondOrderSelector) PairName(k int) string {
	p := s.pairs[k]
	return fmt.Sprintf("%s_x_%s", s.sourceNames[p.I], s.sourceNames[p.J])
}

// Apply adds the F9 columns x_i·x_j (standardized sources) to a frame whose
// first columns match the source names the selector was fit on.
func (s *SecondOrderSelector) Apply(f *Frame) error {
	for i, name := range s.sourceNames {
		if i >= len(f.names) || f.names[i] != name {
			return fmt.Errorf("features: second-order source column %d mismatch (%q)", i, name)
		}
	}
	for k, p := range s.pairs {
		vals := make([]float64, len(f.ids))
		for i := range f.x {
			xi := clipZ((f.x[i][p.I] - s.means[p.I]) / s.stds[p.I])
			xj := clipZ((f.x[i][p.J] - s.means[p.J]) / s.stds[p.J])
			vals[i] = xi * xj
		}
		if err := f.AddDense(F9SecondOrder, s.PairName(k), vals); err != nil {
			return err
		}
	}
	return nil
}

// ApplyRow computes the F9 values for one assembled feature row whose
// leading columns match the fitted source names — the incremental
// maintenance path's per-customer counterpart of Apply, arithmetic
// identical term for term (same standardize, clip and multiply on the same
// float64 inputs), so a row refreshed through it is bit-identical to the
// same row in a full Apply.
func (s *SecondOrderSelector) ApplyRow(row []float64) ([]float64, error) {
	if len(row) < len(s.sourceNames) {
		return nil, fmt.Errorf("features: second-order row has %d columns, selector needs %d sources", len(row), len(s.sourceNames))
	}
	vals := make([]float64, len(s.pairs))
	for k, p := range s.pairs {
		xi := clipZ((row[p.I] - s.means[p.I]) / s.stds[p.I])
		xj := clipZ((row[p.J] - s.means[p.J]) / s.stds[p.J])
		vals[k] = xi * xj
	}
	return vals, nil
}

// NumPairs returns how many F9 columns the selector emits.
func (s *SecondOrderSelector) NumPairs() int { return len(s.pairs) }

// clipZ bounds a standardized value so a single outlier cannot dominate a
// product feature (products of heavy tails otherwise hand the forest splits
// that fit one customer).
func clipZ(z float64) float64 {
	const bound = 4
	if z > bound {
		return bound
	}
	if z < -bound {
		return -bound
	}
	return z
}

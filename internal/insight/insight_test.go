package insight

import (
	"strings"
	"testing"

	"telcochurn/internal/core"
	"telcochurn/internal/features"
	"telcochurn/internal/synth"
)

func TestNetworkReport(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Customers = 1500
	cfg.Months = 3
	months := synth.Simulate(cfg)
	src := core.NewMemorySource(months, cfg.DaysPerMonth)
	win := features.MonthWindow(2, cfg.DaysPerMonth)
	tbl, err := src.Tables(win)
	if err != nil {
		t.Fatal(err)
	}
	labels := core.LabelsOf(months[2].Truth) // churn in month 3

	report, err := BuildNetworkReport(tbl, win, cfg.DaysPerMonth, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) == 0 {
		t.Fatal("no cells in report")
	}
	totalCustomers := 0
	for _, c := range report.Cells {
		if c.ChurnRate < 0 || c.ChurnRate > 1 {
			t.Fatalf("cell %d churn rate %g", c.Cell, c.ChurnRate)
		}
		if c.Churners > c.Customers {
			t.Fatalf("cell %d churners %d > customers %d", c.Cell, c.Churners, c.Customers)
		}
		totalCustomers += c.Customers
	}
	// Nearly every labeled customer has location fixes; allow some slack for
	// the fully inactive.
	if totalCustomers < len(labels)*8/10 {
		t.Errorf("report covers %d customers of %d labeled", totalCustomers, len(labels))
	}
	// Ranked descending by churn rate.
	for i := 1; i < len(report.Cells); i++ {
		if report.Cells[i].ChurnRate > report.Cells[i-1].ChurnRate {
			t.Fatal("cells not ranked by churn rate")
		}
	}
	// The generator couples cell quality to churn, so the weighted
	// correlation must come out positive.
	if report.QualityChurnCorr <= 0 {
		t.Errorf("quality-churn correlation %.3f, want positive", report.QualityChurnCorr)
	}

	var sb strings.Builder
	report.Render(&sb, 5)
	if !strings.Contains(sb.String(), "network insight") {
		t.Error("render missing header")
	}
	if got := strings.Count(sb.String(), "\n"); got != 7 {
		t.Errorf("render lines = %d, want 7 (header+cols+5 cells)", got)
	}
}

func TestWeightedCorrDegenerate(t *testing.T) {
	if got := weightedCorr(nil); got != 0 {
		t.Errorf("empty corr = %g", got)
	}
	same := []CellReport{{Customers: 5, AvgQuality: 1, ChurnRate: 0.1}, {Customers: 5, AvgQuality: 1, ChurnRate: 0.2}}
	if got := weightedCorr(same); got != 0 {
		t.Errorf("zero-variance corr = %g", got)
	}
}

// Package insight implements the "network insight" side of the paper's
// application layer (Figure 2): operator-facing aggregations that connect
// churn to the radio network — which cells are bleeding customers, and does
// their measured quality explain it. The paper motivates this as the
// customer-centric network optimization loop: "We can use a customer-centric
// network optimization solution to improve KPI/KQI experiences of potential
// churners" (Section 5.3).
package insight

import (
	"fmt"
	"io"
	"math"
	"sort"

	"telcochurn/internal/features"
	"telcochurn/internal/table"
)

// CellReport summarizes one cell's customer base, churn and quality for one
// observation window.
type CellReport struct {
	Cell       int64
	Lac        int64
	Customers  int // distinct customers whose dominant cell this is
	Churners   int // of those, labeled churners in the label month
	ChurnRate  float64
	AvgQuality float64 // mean per-customer quality index (higher = worse)
}

// NetworkReport is the ranked per-cell view.
type NetworkReport struct {
	Cells []CellReport
	// QualityChurnCorr is the Pearson correlation between a cell's average
	// quality index and its churn rate (positive = bad quality cells churn
	// more), weighted by customer count.
	QualityChurnCorr float64
}

// BuildNetworkReport assigns every customer to their dominant cell in the
// window (most location fixes), computes per-cell churn against the truth
// labels, and derives a per-cell quality index from the PS records
// (normalized page response delay — higher is worse).
func BuildNetworkReport(tbl features.Tables, win features.Window, daysPerMonth int, labels map[int64]int) (*NetworkReport, error) {
	dominant, lacOf, err := dominantCells(tbl.Locations, win, daysPerMonth)
	if err != nil {
		return nil, err
	}
	quality := customerQuality(tbl.Web, win, daysPerMonth)

	type acc struct {
		customers, churners int
		qualitySum          float64
		qualityN            int
	}
	cells := map[int64]*acc{}
	for id, cell := range dominant {
		y, ok := labels[id]
		if !ok {
			continue
		}
		a := cells[cell]
		if a == nil {
			a = &acc{}
			cells[cell] = a
		}
		a.customers++
		if y == 1 {
			a.churners++
		}
		if q, ok := quality[id]; ok {
			a.qualitySum += q
			a.qualityN++
		}
	}

	report := &NetworkReport{}
	for cell, a := range cells {
		cr := CellReport{
			Cell:      cell,
			Lac:       lacOf[cell],
			Customers: a.customers,
			Churners:  a.churners,
		}
		if a.customers > 0 {
			cr.ChurnRate = float64(a.churners) / float64(a.customers)
		}
		if a.qualityN > 0 {
			cr.AvgQuality = a.qualitySum / float64(a.qualityN)
		}
		report.Cells = append(report.Cells, cr)
	}
	sort.Slice(report.Cells, func(i, j int) bool {
		if report.Cells[i].ChurnRate != report.Cells[j].ChurnRate {
			return report.Cells[i].ChurnRate > report.Cells[j].ChurnRate
		}
		return report.Cells[i].Cell < report.Cells[j].Cell
	})
	report.QualityChurnCorr = weightedCorr(report.Cells)
	return report, nil
}

// dominantCells maps each customer to the cell with the most MR fixes.
func dominantCells(loc *table.Table, win features.Window, daysPerMonth int) (map[int64]int64, map[int64]int64, error) {
	months := loc.MustCol("month").Ints
	days := loc.MustCol("day").Ints
	imsi := loc.MustCol("imsi").Ints
	cell := loc.MustCol("cell").Ints
	lac := loc.MustCol("lac").Ints

	counts := map[int64]map[int64]int{}
	lacOf := map[int64]int64{}
	n := loc.NumRows()
	for i := 0; i < n; i++ {
		abs := features.AbsDay(int(months[i]), int(days[i]), daysPerMonth)
		if abs < win.FromAbs || abs > win.ToAbs {
			continue
		}
		m := counts[imsi[i]]
		if m == nil {
			m = map[int64]int{}
			counts[imsi[i]] = m
		}
		m[cell[i]]++
		lacOf[cell[i]] = lac[i]
	}
	dominant := make(map[int64]int64, len(counts))
	for id, m := range counts {
		bestCell, bestN := int64(-1), -1
		for c, k := range m {
			if k > bestN || (k == bestN && c < bestCell) {
				bestCell, bestN = c, k
			}
		}
		dominant[id] = bestCell
	}
	return dominant, lacOf, nil
}

// customerQuality derives a per-customer quality index from the PS records:
// mean page response delay (seconds, higher = worse experience).
func customerQuality(web *table.Table, win features.Window, daysPerMonth int) map[int64]float64 {
	months := web.MustCol("month").Ints
	days := web.MustCol("day").Ints
	imsi := web.MustCol("imsi").Ints
	delay := web.MustCol("resp_delay").Floats

	sums := map[int64]float64{}
	counts := map[int64]int{}
	n := web.NumRows()
	for i := 0; i < n; i++ {
		abs := features.AbsDay(int(months[i]), int(days[i]), daysPerMonth)
		if abs < win.FromAbs || abs > win.ToAbs {
			continue
		}
		sums[imsi[i]] += delay[i]
		counts[imsi[i]]++
	}
	out := make(map[int64]float64, len(sums))
	for id, s := range sums {
		out[id] = s / float64(counts[id])
	}
	return out
}

// weightedCorr computes the customer-weighted Pearson correlation between
// cell quality and churn rate.
func weightedCorr(cells []CellReport) float64 {
	var wSum, qMean, cMean float64
	for _, c := range cells {
		w := float64(c.Customers)
		wSum += w
		qMean += w * c.AvgQuality
		cMean += w * c.ChurnRate
	}
	if wSum == 0 {
		return 0
	}
	qMean /= wSum
	cMean /= wSum
	var cov, qVar, cVar float64
	for _, c := range cells {
		w := float64(c.Customers)
		dq := c.AvgQuality - qMean
		dc := c.ChurnRate - cMean
		cov += w * dq * dc
		qVar += w * dq * dq
		cVar += w * dc * dc
	}
	if qVar == 0 || cVar == 0 {
		return 0
	}
	return cov / math.Sqrt(qVar*cVar)
}

// Render prints the worst n cells in an operator-report layout.
func (r *NetworkReport) Render(w io.Writer, n int) {
	if n <= 0 || n > len(r.Cells) {
		n = len(r.Cells)
	}
	fmt.Fprintf(w, "network insight: %d cells, quality-churn correlation %.3f\n", len(r.Cells), r.QualityChurnCorr)
	fmt.Fprintln(w, "cell   lac  customers  churners  churn%   avg_resp_delay")
	for _, c := range r.Cells[:n] {
		fmt.Fprintf(w, "%-5d  %-3d  %-9d  %-8d  %-6.2f  %.2fs\n",
			c.Cell, c.Lac, c.Customers, c.Churners, 100*c.ChurnRate, c.AvgQuality)
	}
}

#!/usr/bin/env bash
# Network chaos harness: churnd behind the deterministic seeded TCP fault
# proxy (cmd/netproxy), driven by churnload. Three sections:
#
#   1. Proxied load: a mixed read/write churnload run through a proxy
#      injecting per-chunk latency, partial writes and mid-stream stalls.
#      Gates are relaxed versions of the clean loadtest's (faults cost
#      latency, not correctness): p99 under CHAOS_MAX_P99, non-2xx under
#      CHAOS_MAX_NON2XX.
#   2. Schedule determinism: the same request sequence against two proxies
#      with the same seed must produce the same per-connection reset
#      pattern — network chaos here is a property test, not a flake source.
#   3. Kill-and-restart: SIGKILL churnd mid-ingest behind a resetting
#      proxy, tear the event log's tail frame (the torn write a crash can
#      leave), restart, and assert the tail is quarantined (sidecar file +
#      events_quarantined metric) while every surviving event still serves —
#      served scores must be bit-identical to `churnctl score -full` over
#      the merged warehouse.
#
# Tunables: CHAOS_PORT, CHAOS_PROXY_PORT, CHAOS_SEED, CHAOS_RPS,
# CHAOS_DURATION, CHAOS_MAX_P99, CHAOS_MAX_NON2XX.
set -euo pipefail

PORT="${CHAOS_PORT:-18085}"
PROXY_PORT="${CHAOS_PROXY_PORT:-18086}"
SEED="${CHAOS_SEED:-7}"
RPS="${CHAOS_RPS:-150}"
DURATION="${CHAOS_DURATION:-8s}"
MAX_P99="${CHAOS_MAX_P99:-2s}"
MAX_NON2XX="${CHAOS_MAX_NON2XX:-0.02}"
WORK="$(mktemp -d)"
CHURND_PID=""
PROXY_PID=""
cleanup() {
    for pid in "$CHURND_PID" "$PROXY_PID"; do
        if [ -n "$pid" ]; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

wait_ready() {
    local i=0
    until curl -sf "http://127.0.0.1:$PORT/readyz" > /dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 50 ] || { echo "chaos-net: churnd never became ready"; exit 1; }
        kill -0 "$CHURND_PID" 2>/dev/null || { echo "chaos-net: churnd exited early"; exit 1; }
        sleep 0.2
    done
}

stop_churnd() {
    if [ -n "$CHURND_PID" ]; then
        kill "$CHURND_PID" 2>/dev/null || true
        wait "$CHURND_PID" 2>/dev/null || true
        CHURND_PID=""
    fi
}

stop_proxy() {
    if [ -n "$PROXY_PID" ]; then
        kill "$PROXY_PID" 2>/dev/null || true
        wait "$PROXY_PID" 2>/dev/null || true
        PROXY_PID=""
    fi
}

echo "== build =="
go build -o "$WORK/churnctl" ./cmd/churnctl
go build -o "$WORK/churnd" ./cmd/churnd
go build -o "$WORK/churnload" ./cmd/churnload
go build -o "$WORK/netproxy" ./cmd/netproxy

echo "== generate + train =="
"$WORK/churnctl" generate -out "$WORK/wh" -customers 400 -months 4
"$WORK/churnctl" train -warehouse "$WORK/wh" -out "$WORK/model.tcpa" -trees 20

echo "== 1. proxied mixed load (latency/partial/stall faults, relaxed gates) =="
"$WORK/churnd" -artifact "$WORK/model.tcpa" -warehouse "$WORK/wh" \
    -addr "127.0.0.1:$PORT" > "$WORK/churnd1.log" 2>&1 &
CHURND_PID=$!
wait_ready
"$WORK/netproxy" -listen "127.0.0.1:$PROXY_PORT" -upstream "127.0.0.1:$PORT" \
    -seed "$SEED" -site loadtest \
    -read-latency 5ms -write-latency 5ms -partial 0.2 \
    -stall 0.1 -stall-duration 200ms 2> "$WORK/proxy1.log" &
PROXY_PID=$!
sleep 0.3
"$WORK/churnload" -addr "127.0.0.1:$PROXY_PORT" -rps "$RPS" -duration "$DURATION" \
    -conns 8 -ingest-mix 0.2 -name BenchmarkChurnloadChaosNet \
    -out "$WORK/chaos_load.json" -max-p99 "$MAX_P99" -max-non2xx "$MAX_NON2XX"
stop_proxy
grep -Eq "delays=[1-9]" "$WORK/proxy1.log" \
    || { echo "chaos-net: proxy injected no latency"; cat "$WORK/proxy1.log"; exit 1; }
grep -Eq "partials=[1-9]" "$WORK/proxy1.log" \
    || { echo "chaos-net: proxy split no writes"; cat "$WORK/proxy1.log"; exit 1; }
echo "   proxied load passed gates (p99 <= $MAX_P99, non-2xx <= $MAX_NON2XX) with faults firing"

echo "== 2. fault-schedule determinism (same seed, same reset pattern) =="
ONE_ID="$(curl -sf "http://127.0.0.1:$PORT/v1/customers?limit=1" \
    | sed -n 's/.*"ids":\[\([0-9]*\)\].*/\1/p')"
[ -n "$ONE_ID" ] || { echo "chaos-net: customer discovery failed"; exit 1; }
# Each curl is one fresh connection, so connection indices line up across
# runs; -reset-window 256 keeps every condemned connection's byte threshold
# inside a single small HTTP exchange, so condemned == visibly killed.
reset_pattern() {
    local pattern=""
    for _ in $(seq 1 16); do
        if curl -sf --max-time 5 -X POST -d "{\"id\":$ONE_ID}" \
            "http://127.0.0.1:$PROXY_PORT/v1/score" > /dev/null 2>&1; then
            pattern="${pattern}o"
        else
            pattern="${pattern}x"
        fi
    done
    echo "$pattern"
}
run_pattern() {
    "$WORK/netproxy" -listen "127.0.0.1:$PROXY_PORT" -upstream "127.0.0.1:$PORT" \
        -seed "$SEED" -site determinism -reset 0.45 -reset-window 256 \
        2> "$WORK/proxy_det.log" &
    PROXY_PID=$!
    sleep 0.3
    reset_pattern
    stop_proxy
}
PAT1="$(run_pattern)"
PAT2="$(run_pattern)"
[ "$PAT1" = "$PAT2" ] \
    || { echo "chaos-net: reset schedule not deterministic: $PAT1 vs $PAT2"; exit 1; }
case "$PAT1" in
    *x*) ;;
    *) echo "chaos-net: no connection was reset (pattern $PAT1)"; exit 1 ;;
esac
case "$PAT1" in
    *o*) ;;
    *) echo "chaos-net: every connection was reset (pattern $PAT1)"; exit 1 ;;
esac
echo "   seed $SEED reproduced reset pattern $PAT1 across two proxies"
stop_churnd

echo "== 3. kill mid-ingest, tear the tail, restart, quarantine + parity =="
"$WORK/churnctl" generate -out "$WORK/wh2" -customers 400 -months 4
"$WORK/churnctl" train -warehouse "$WORK/wh2" -out "$WORK/model2.tcpa" -trees 20
"$WORK/churnd" -artifact "$WORK/model2.tcpa" -warehouse "$WORK/wh2" \
    -addr "127.0.0.1:$PORT" -fsync always > "$WORK/churnd2.log" 2>&1 &
CHURND_PID=$!
wait_ready
# Site kill-run under seed 7 condemns the second and fourth accepted
# connections but spares the first — churnload's /v1/customers discovery
# rides connection 1, so discovery always succeeds while the workload
# connections behind it get reset mid-run. The 128-byte window keeps every
# condemned connection's threshold inside a single HTTP exchange.
"$WORK/netproxy" -listen "127.0.0.1:$PROXY_PORT" -upstream "127.0.0.1:$PORT" \
    -seed "$SEED" -site kill-run -reset 0.5 -reset-window 128 -read-latency 2ms \
    2> "$WORK/proxy3.log" &
PROXY_PID=$!
sleep 0.3
# Heavy write mix so the event log has plenty of committed segments when the
# SIGKILL lands; no gates — this run exists to be interrupted.
"$WORK/churnload" -addr "127.0.0.1:$PROXY_PORT" -rps 100 -duration 10s \
    -conns 8 -ingest-mix 0.5 -out "$WORK/chaos_kill.json" > /dev/null 2>&1 &
LOAD_PID=$!
sleep 3
kill -9 "$CHURND_PID" 2>/dev/null || true
wait "$CHURND_PID" 2>/dev/null || true
CHURND_PID=""
wait "$LOAD_PID" 2>/dev/null || true
stop_proxy
grep -Eq "resets=[1-9]" "$WORK/proxy3.log" \
    || { echo "chaos-net: kill-run proxy reset no connections"; cat "$WORK/proxy3.log"; exit 1; }

SEGS="$(ls "$WORK/wh2/.events/" | grep -c 'seq=.*\.tev$' || true)"
[ "$SEGS" -ge 2 ] || { echo "chaos-net: only $SEGS event segments landed before the kill"; exit 1; }
TAIL="$(ls "$WORK/wh2/.events/" | grep 'seq=.*\.tev$' | sort | tail -1)"
# A torn tail frame: the crash got through the payload but not the CRC.
truncate -s -1 "$WORK/wh2/.events/$TAIL"
echo "   killed churnd with $SEGS segments logged; tore the tail of $TAIL"

"$WORK/churnd" -artifact "$WORK/model2.tcpa" -warehouse "$WORK/wh2" \
    -addr "127.0.0.1:$PORT" > "$WORK/churnd3.log" 2>&1 &
CHURND_PID=$!
wait_ready
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '"events_quarantined":1' \
    || { echo "chaos-net: events_quarantined != 1 after restart"; exit 1; }
[ -f "$WORK/wh2/.events/$TAIL.quarantine" ] \
    || { echo "chaos-net: quarantine sidecar missing"; exit 1; }
[ ! -f "$WORK/wh2/.events/$TAIL" ] \
    || { echo "chaos-net: torn segment still in the replay path"; exit 1; }
grep -q "quarantined corrupt event-log tail" "$WORK/churnd3.log" \
    || { echo "chaos-net: quarantine not logged"; exit 1; }

# Served scores over every customer, paired id,score.
IDS="$(curl -sf "http://127.0.0.1:$PORT/v1/customers" \
    | sed -n 's/.*"ids":\[\([0-9,]*\)\].*/\1/p')"
[ -n "$IDS" ] || { echo "chaos-net: customer discovery failed after restart"; exit 1; }
curl -sf -X POST -d "{\"ids\":[$IDS]}" "http://127.0.0.1:$PORT/v1/score" > "$WORK/served.json"
echo "$IDS" | tr ',' '\n' > "$WORK/ids.txt"
tr -d ' \n' < "$WORK/served.json" \
    | sed -n 's/.*"scores":\[\([^]]*\)\].*/\1/p' | tr ',' '\n' > "$WORK/scores.txt"
paste -d, "$WORK/ids.txt" "$WORK/scores.txt" | sort -t, -k1,1n > "$WORK/served.csv"

# Graceful stop: the drain sequence must run and log.
kill "$CHURND_PID"
wait "$CHURND_PID" 2>/dev/null || true
CHURND_PID=""
grep -q "churnd: drained" "$WORK/churnd3.log" \
    || { echo "chaos-net: drain sequence did not complete"; cat "$WORK/churnd3.log"; exit 1; }

# Merge the surviving log (the quarantined sidecar stays out) and rebuild
# from scratch: the batch path must print the same bits churnd served.
"$WORK/churnctl" ingest -warehouse "$WORK/wh2" -merge | grep -q "merged" \
    || { echo "chaos-net: merge did not fold the surviving events"; exit 1; }
"$WORK/churnctl" score -warehouse "$WORK/wh2" -model "$WORK/model2.tcpa" -top 0 -full \
    | tail -n +2 | awk -F, '{print $2","$3}' | sort -t, -k1,1n > "$WORK/batch.csv"
if ! cmp -s "$WORK/served.csv" "$WORK/batch.csv"; then
    echo "chaos-net: served scores after quarantined restart differ from the merged rebuild"
    diff "$WORK/served.csv" "$WORK/batch.csv" | head -10
    exit 1
fi
N="$(wc -l < "$WORK/served.csv")"
echo "   $N post-restart served scores bit-identical to churnctl score -full after merge"

echo "chaos-net: OK"

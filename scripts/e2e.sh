#!/usr/bin/env bash
# End-to-end serving smoke test: train a tiny artifact on synthetic data,
# start churnd, score one batch over HTTP and assert exact score parity with
# the batch path (`churnctl score -full`), then knock out a raw table and
# assert degraded-mode scoring still serves with the mask reported. The
# final section exercises the streaming path: ingest a recharge event into a
# live churnd and assert the served score moves on the very next request AND
# lands bit-identical to a full rebuild over the merged warehouse. Run via
# `make e2e`; CI runs the same script. Needs the go toolchain, bash and
# standard POSIX tools.
set -euo pipefail

PORT="${E2E_PORT:-18080}"
WORK="$(mktemp -d)"
CHURND_PID=""
cleanup() {
    # Always reap the background daemon, whatever path exited the script.
    if [ -n "$CHURND_PID" ]; then
        kill "$CHURND_PID" 2>/dev/null || true
        wait "$CHURND_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

wait_healthy() {
    local i=0
    until curl -sf "http://127.0.0.1:$PORT/readyz" > /dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 50 ] || { echo "e2e: churnd never became ready"; exit 1; }
        kill -0 "$CHURND_PID" 2>/dev/null || { echo "e2e: churnd exited early"; exit 1; }
        sleep 0.2
    done
}

echo "== build =="
go build -o "$WORK/churnctl" ./cmd/churnctl
go build -o "$WORK/churnd" ./cmd/churnd

echo "== generate + train =="
"$WORK/churnctl" generate -out "$WORK/wh" -customers 500 -months 4
"$WORK/churnctl" train -warehouse "$WORK/wh" -out "$WORK/model.tcpa" -trees 20

echo "== batch scores (churnctl score) =="
# rank,imsi,score at full precision; strip the header.
"$WORK/churnctl" score -warehouse "$WORK/wh" -model "$WORK/model.tcpa" -top 0 -full \
    | tail -n +2 > "$WORK/batch.csv"
N="$(wc -l < "$WORK/batch.csv")"
[ "$N" -gt 0 ] || { echo "e2e: batch score produced no rows"; exit 1; }
echo "   $N customers scored in batch"

echo "== start churnd on :$PORT =="
"$WORK/churnd" -artifact "$WORK/model.tcpa" -warehouse "$WORK/wh" -addr "127.0.0.1:$PORT" &
CHURND_PID=$!
wait_healthy
curl -sf "http://127.0.0.1:$PORT/healthz"; echo

echo "== served scores (POST /v1/score) =="
# One batch request over every scored customer, in batch.csv order.
IDS="$(cut -d, -f2 "$WORK/batch.csv" | paste -sd, -)"
curl -sf -X POST -d "{\"ids\":[$IDS]}" "http://127.0.0.1:$PORT/v1/score" > "$WORK/served.json"

echo "== parity check =="
# Pull the scores array back out and compare string-for-string against the
# batch CSV: Go's JSON float encoding round-trips float64 exactly, and
# churnctl -full prints the same shortest representation, so bit-identical
# scores compare equal as text.
tr -d ' \n' < "$WORK/served.json" \
    | sed -n 's/.*"scores":\[\([^]]*\)\].*/\1/p' \
    | tr ',' '\n' > "$WORK/served.txt"
printf '\n' >> "$WORK/served.txt" # tr leaves the last line unterminated
cut -d, -f3 "$WORK/batch.csv" > "$WORK/batch.txt"
if ! cmp -s "$WORK/batch.txt" "$WORK/served.txt"; then
    echo "e2e: served scores differ from batch scores"
    diff "$WORK/batch.txt" "$WORK/served.txt" | head -10
    exit 1
fi
echo "   $N served scores bit-identical to churnctl score"

curl -sf "http://127.0.0.1:$PORT/metrics"; echo

echo "== degraded mode (web feed knocked out) =="
kill "$CHURND_PID"
wait "$CHURND_PID" 2>/dev/null || true
CHURND_PID=""
rm -rf "$WORK/wh/web"

# Strict scoring must refuse the broken warehouse...
if "$WORK/churnctl" score -warehouse "$WORK/wh" -model "$WORK/model.tcpa" -top 5 > /dev/null 2>&1; then
    echo "e2e: strict score survived a missing raw table"
    exit 1
fi
# ...degraded scoring serves it and names the imputed groups on stderr.
DEG_ERR="$("$WORK/churnctl" score -degraded -warehouse "$WORK/wh" -model "$WORK/model.tcpa" -top 5 2>&1 >/dev/null)"
echo "$DEG_ERR" | grep -q "degraded groups: F1,F3" \
    || { echo "e2e: churnctl score -degraded did not report mask: $DEG_ERR"; exit 1; }

"$WORK/churnd" -degraded -artifact "$WORK/model.tcpa" -warehouse "$WORK/wh" -addr "127.0.0.1:$PORT" &
CHURND_PID=$!
wait_healthy
READY="$(curl -sf "http://127.0.0.1:$PORT/readyz")"
echo "$READY" | grep -q '"degraded":"F1,F3"' \
    || { echo "e2e: degraded churnd readyz missing mask: $READY"; exit 1; }
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '"degraded_groups":"F1,F3"' \
    || { echo "e2e: degraded_groups missing from /metrics"; exit 1; }
ONE_ID="$(cut -d, -f2 "$WORK/batch.csv" | head -1)"
curl -sf -X POST -d "{\"id\":$ONE_ID}" "http://127.0.0.1:$PORT/v1/score" \
    | grep -q '"degraded":"F1,F3"' \
    || { echo "e2e: degraded score response missing mask"; exit 1; }
echo "   degraded window served with mask F1,F3 via churnctl, /readyz, /metrics and /v1/score"

echo "== sharded warehouse layout =="
# The same world landed plain and hash-sharded must be interchangeable:
# month discovery, inspect, train/score and the out-of-core build all work
# on either layout, and the built frame is bit-identical across shard
# counts (asserted via the frame checksum).
"$WORK/churnctl" generate -out "$WORK/wh1" -customers 500 -months 4 -shards 1
"$WORK/churnctl" generate -out "$WORK/wh4" -customers 500 -months 4 -shards 4

"$WORK/churnctl" inspect -warehouse "$WORK/wh4" | tee "$WORK/inspect4.txt"
grep -q "shards=4" "$WORK/inspect4.txt" \
    || { echo "e2e: inspect does not report sharded layout"; exit 1; }
# Row counts must agree between layouts (shards= annotation aside).
"$WORK/churnctl" inspect -warehouse "$WORK/wh1" | sort > "$WORK/inspect1.txt"
sed 's/ shards=4$//' "$WORK/inspect4.txt" | sort > "$WORK/inspect4n.txt"
cmp -s "$WORK/inspect1.txt" "$WORK/inspect4n.txt" \
    || { echo "e2e: plain and sharded inspect disagree"; diff "$WORK/inspect1.txt" "$WORK/inspect4n.txt"; exit 1; }

SUM1="$("$WORK/churnctl" build -warehouse "$WORK/wh1" -checksum | sed -n 's/^frame_checksum=//p')"
SUM4="$("$WORK/churnctl" build -warehouse "$WORK/wh4" -checksum | sed -n 's/^frame_checksum=//p')"
[ -n "$SUM1" ] && [ "$SUM1" = "$SUM4" ] \
    || { echo "e2e: frame checksum differs across shard counts: $SUM1 vs $SUM4"; exit 1; }
echo "   frame checksum $SUM1 identical for shards=1 and shards=4"

# Training and batch scoring read the sharded layout through the same
# month-discovery path as the plain one.
"$WORK/churnctl" train -warehouse "$WORK/wh4" -out "$WORK/model4.tcpa" -trees 20
"$WORK/churnctl" score -warehouse "$WORK/wh4" -model "$WORK/model4.tcpa" -top 0 -full \
    | tail -n +2 > "$WORK/batch4.csv"
N4="$(wc -l < "$WORK/batch4.csv")"
[ "$N4" -gt 0 ] || { echo "e2e: sharded batch score produced no rows"; exit 1; }
echo "   trained and scored $N4 customers from the sharded layout"

echo "== precomputed vectors (train -precompute) =="
# The same training config with -precompute must not change a single score:
# the embedded snapshot is the strict serving frame, persisted.
TRAIN_OUT="$("$WORK/churnctl" train -warehouse "$WORK/wh4" -out "$WORK/model4p.tcpa" -trees 20 -precompute)"
echo "$TRAIN_OUT" | grep -q "precomputed" \
    || { echo "e2e: train -precompute did not report a snapshot"; exit 1; }
"$WORK/churnctl" score -warehouse "$WORK/wh4" -model "$WORK/model4p.tcpa" -top 0 -full \
    | tail -n +2 > "$WORK/batch4p.csv"
cmp -s "$WORK/batch4.csv" "$WORK/batch4p.csv" \
    || { echo "e2e: precomputed scores differ from frame scores"; diff "$WORK/batch4.csv" "$WORK/batch4p.csv" | head -5; exit 1; }
echo "   precomputed-vector scores bit-identical to the frame path"

# The snapshot serves with no warehouse at all — churnctl and churnd both —
# while the plain artifact still refuses.
rm -rf "$WORK/wh4"
"$WORK/churnctl" score -warehouse "$WORK/wh4" -model "$WORK/model4p.tcpa" -top 0 -full \
    | tail -n +2 > "$WORK/nowh.csv"
cmp -s "$WORK/batch4.csv" "$WORK/nowh.csv" \
    || { echo "e2e: warehouse-free scores differ from frame scores"; exit 1; }
if "$WORK/churnctl" score -warehouse "$WORK/wh4" -model "$WORK/model4.tcpa" -top 5 > /dev/null 2>&1; then
    echo "e2e: plain artifact scored without a warehouse"
    exit 1
fi
kill "$CHURND_PID"
wait "$CHURND_PID" 2>/dev/null || true
CHURND_PID=""
"$WORK/churnd" -artifact "$WORK/model4p.tcpa" -warehouse "$WORK/wh4" -addr "127.0.0.1:$PORT" &
CHURND_PID=$!
wait_healthy
curl -sf "http://127.0.0.1:$PORT/readyz" | grep -q '"provider":"vectors"' \
    || { echo "e2e: churnd did not serve from the vector snapshot"; exit 1; }
VID="$(head -1 "$WORK/batch4.csv" | cut -d, -f2)"
VSCORE="$(head -1 "$WORK/batch4.csv" | cut -d, -f3)"
curl -sf -X POST -d "{\"id\":$VID}" "http://127.0.0.1:$PORT/v1/score" | grep -q "$VSCORE" \
    || { echo "e2e: warehouse-free served score mismatch"; exit 1; }
echo "   snapshot served without a warehouse, scores unchanged"

echo "== streaming ingest freshness =="
# A fresh world with an empty event log: ingest one recharge into a live
# churnd and the very next score request must already reflect it (the fold
# is synchronous with the ingest response) — and must be bit-identical to
# what a from-scratch rebuild computes once the log is merged into the
# monthly partitions.
kill "$CHURND_PID"
wait "$CHURND_PID" 2>/dev/null || true
CHURND_PID=""
"$WORK/churnctl" generate -out "$WORK/whs" -customers 400 -months 4
"$WORK/churnctl" train -warehouse "$WORK/whs" -out "$WORK/models.tcpa" -trees 20
"$WORK/churnd" -artifact "$WORK/models.tcpa" -warehouse "$WORK/whs" -addr "127.0.0.1:$PORT" &
CHURND_PID=$!
wait_healthy
curl -sf "http://127.0.0.1:$PORT/readyz" | grep -q '"ingest":true' \
    || { echo "e2e: churnd did not enable ingest over the warehouse"; exit 1; }

CUST="$(curl -sf "http://127.0.0.1:$PORT/v1/customers?limit=10")"
CAND="$(echo "$CUST" | sed -n 's/.*"ids":\[\([0-9,]*\)\].*/\1/p' | tr ',' ' ')"
FMONTH="$(echo "$CUST" | sed -n 's/.*"month":\([0-9]*\).*/\1/p')"
[ -n "$CAND" ] && [ -n "$FMONTH" ] || { echo "e2e: customer discovery failed: $CUST"; exit 1; }

# Score, ingest a burst of raw events, score again: the served score must
# move on the very next request. The burst is a recharge plus a run of
# heavy web sessions — web usage drives the forest's top features
# (flux/throughput), while staying off the graph groups so the incremental
# fold and the full rebuild agree on every column. A burst may still not
# cross any split threshold for a given customer, so each candidate gets
# one and we accept the first customer whose score moves.
score_one() {
    curl -sf -X POST -d "{\"ids\":[$1]}" "http://127.0.0.1:$PORT/v1/score" \
        | tr -d ' ' | sed -n 's/.*"scores":\[\([^]]*\)\].*/\1/p'
}
FID=""
for ID in $CAND; do
    BEFORE="$(score_one "$ID")"
    EVS="{\"table\":\"recharges\",\"imsi\":$ID,\"month\":$FMONTH,\"day\":7,\"fields\":{\"amount\":250}},"
    for D in 2 5 9 14 20; do
        EVS="$EVS{\"table\":\"web\",\"imsi\":$ID,\"month\":$FMONTH,\"day\":$D,\"fields\":{\"page_req\":40,\"page_succ\":38,\"resp_delay\":0.8,\"browse_succ\":35,\"browse_delay\":1.1,\"dl_tp\":900,\"ul_tp\":250,\"flux\":600,\"tcp_rtt\":90}},"
    done
    INGEST="$(curl -sf -X POST -d "{\"events\":[${EVS%,}]}" "http://127.0.0.1:$PORT/v1/events")"
    echo "$INGEST" | grep -q '"applied":6' \
        || { echo "e2e: ingest did not apply the burst: $INGEST"; exit 1; }
    AFTER="$(score_one "$ID")"
    [ -n "$BEFORE" ] && [ -n "$AFTER" ] || { echo "e2e: score extraction failed"; exit 1; }
    if [ "$BEFORE" != "$AFTER" ]; then
        FID="$ID"
        break
    fi
done
[ -n "$FID" ] || { echo "e2e: no served score moved after ingest bursts"; exit 1; }
echo "   score for customer $FID moved $BEFORE -> $AFTER on the next request"

# Bit-equality with the batch path: quiesce churnd, fold the log into the
# monthly partitions, and rebuild from scratch. Same rows, same order —
# the incremental fold and the full rebuild must print the same bits.
kill "$CHURND_PID"
wait "$CHURND_PID" 2>/dev/null || true
CHURND_PID=""
"$WORK/churnctl" ingest -warehouse "$WORK/whs" -merge | grep -q "merged [1-9]" \
    || { echo "e2e: merge did not fold the logged events"; exit 1; }
FULL="$("$WORK/churnctl" score -warehouse "$WORK/whs" -model "$WORK/models.tcpa" -top 0 -full \
    | awk -F, -v id="$FID" '$2 == id { print $3 }')"
[ "$AFTER" = "$FULL" ] \
    || { echo "e2e: incremental score $AFTER != full-rebuild score $FULL"; exit 1; }
echo "   incremental score bit-identical to the full rebuild after merge"

echo "e2e: OK"

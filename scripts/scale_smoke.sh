#!/usr/bin/env bash
# Out-of-core scale smoke test: prove the sharded wide-table build handles a
# population far beyond the unit-test scale inside a declared memory budget.
#
# Two separate processes on purpose: the generator's RSS high-water mark
# (it simulates whole months in memory) must not pollute the build
# process's peak-RSS gate — VmHWM is per process from exec.
#
# Overrides:
#   SCALE_CUSTOMERS  population per month            (default 50000)
#   SCALE_SHARDS     hash shards                     (default 8)
#   SCALE_MONTHS     recorded months                 (default 2)
#   SCALE_RSS_MB     build peak-RSS ceiling in MB    (default 900)
#
# Calibration at the default scale (50k customers, 8 shards): the sharded
# build peaks at ~620 MB with 4 concurrent shards, while the in-memory
# whole-month build peaks at ~1270 MB. The 900 MB default sits between the
# two, so the gate fails if the build ever falls back to materializing
# whole months (the regression it exists to catch) while leaving ~45%
# headroom over the healthy path for allocator noise.
set -euo pipefail

cd "$(dirname "$0")/.."

CUSTOMERS="${SCALE_CUSTOMERS:-50000}"
SHARDS="${SCALE_SHARDS:-8}"
MONTHS="${SCALE_MONTHS:-2}"
RSS_MB="${SCALE_RSS_MB:-900}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== scale-smoke: ${CUSTOMERS} customers x ${MONTHS} months, ${SHARDS} shards, RSS ceiling ${RSS_MB} MB"

go build -o "$WORK/churnctl" ./cmd/churnctl

"$WORK/churnctl" generate -out "$WORK/wh" \
  -customers "$CUSTOMERS" -months "$MONTHS" -seed 42 -shards "$SHARDS" -burnin 1

"$WORK/churnctl" inspect -warehouse "$WORK/wh" | tee "$WORK/inspect.txt"
grep -q "shards=${SHARDS}" "$WORK/inspect.txt" || {
  echo "scale-smoke: inspect does not report shards=${SHARDS}" >&2
  exit 1
}

"$WORK/churnctl" build -warehouse "$WORK/wh" -rss-limit-mb "$RSS_MB"

echo "== scale-smoke: OK"

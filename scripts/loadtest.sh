#!/usr/bin/env bash
# Serving load smoke: train a tiny artifact with an embedded feature-vector
# snapshot, start churnd, and drive an open-loop churnload run against it.
# The run self-gates — non-zero exit when p99 exceeds LOAD_MAX_P99 or any
# request comes back non-2xx — so `make loadtest` doubles as CI's serving
# latency regression guard. The report lands in LOAD.json (benchjson's
# document shape) for diffing across runs with `benchjson -compare`.
#
# A second, mixed read/write pass (-ingest-mix) interleaves event posts to
# /v1/events with the scores under the same gates, so the latency cost of
# ingest-while-scoring is regression-guarded too. Set LOAD_INGEST_MIX=0 to
# skip it.
#
# Tunables: LOAD_PORT, LOAD_RPS, LOAD_DURATION, LOAD_CONNS, LOAD_MAX_P99,
# LOAD_OUT, LOAD_INGEST_MIX, LOAD_MIX_OUT.
set -euo pipefail

PORT="${LOAD_PORT:-18090}"
RPS="${LOAD_RPS:-300}"
DURATION="${LOAD_DURATION:-10s}"
CONNS="${LOAD_CONNS:-16}"
MAX_P99="${LOAD_MAX_P99:-250ms}"
OUT="${LOAD_OUT:-LOAD.json}"
INGEST_MIX="${LOAD_INGEST_MIX:-0.1}"
MIX_OUT="${LOAD_MIX_OUT:-LOAD_MIX.json}"
WORK="$(mktemp -d)"
CHURND_PID=""
cleanup() {
    if [ -n "$CHURND_PID" ]; then
        kill "$CHURND_PID" 2>/dev/null || true
        wait "$CHURND_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== build =="
go build -o "$WORK/churnctl" ./cmd/churnctl
go build -o "$WORK/churnd" ./cmd/churnd
go build -o "$WORK/churnload" ./cmd/churnload

echo "== generate + train (with vector snapshot) =="
"$WORK/churnctl" generate -out "$WORK/wh" -customers 500 -months 4
"$WORK/churnctl" train -warehouse "$WORK/wh" -out "$WORK/model.tcpa" -trees 25 -precompute

echo "== start churnd on :$PORT =="
"$WORK/churnd" -artifact "$WORK/model.tcpa" -warehouse "$WORK/wh" -addr "127.0.0.1:$PORT" &
CHURND_PID=$!
i=0
until curl -sf "http://127.0.0.1:$PORT/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || { echo "loadtest: churnd never became ready"; exit 1; }
    kill -0 "$CHURND_PID" 2>/dev/null || { echo "loadtest: churnd exited early"; exit 1; }
    sleep 0.2
done

echo "== open-loop load: $RPS rps for $DURATION (gates: p99 <= $MAX_P99, zero non-2xx) =="
"$WORK/churnload" -addr "127.0.0.1:$PORT" -rps "$RPS" -duration "$DURATION" \
    -conns "$CONNS" -out "$OUT" -max-p99 "$MAX_P99" -max-non2xx 0

if [ "$INGEST_MIX" != "0" ]; then
    echo "== mixed load: $RPS rps, ingest mix $INGEST_MIX (same gates) =="
    "$WORK/churnload" -addr "127.0.0.1:$PORT" -rps "$RPS" -duration "$DURATION" \
        -conns "$CONNS" -ingest-mix "$INGEST_MIX" -name BenchmarkChurnloadMixed \
        -out "$MIX_OUT" -max-p99 "$MAX_P99" -max-non2xx 0
fi

echo "loadtest: OK (report in $OUT)"
